//! Table schemas: named, typed columns.

use std::fmt;

use crate::error::DbError;
use crate::value::Value;
use crate::DbResult;

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Boolean column.
    Bool,
    /// 64-bit integer column.
    Int,
    /// 64-bit float column.
    Float,
    /// UTF-8 text column.
    Text,
}

impl ColumnType {
    /// Whether a value is admissible in a column of this type.
    /// NULL is admissible everywhere; ints are admissible in float columns.
    pub fn admits(&self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_) | Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
        )
    }

    /// True for `Int` and `Float`.
    pub fn is_numeric(&self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Float)
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Bool => "BOOL",
            ColumnType::Int => "INT",
            ColumnType::Float => "FLOAT",
            ColumnType::Text => "TEXT",
        };
        write!(f, "{s}")
    }
}

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema, case-insensitive lookup).
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

impl Column {
    /// Creates a new column definition.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from column definitions.
    ///
    /// Returns an error when two columns share a (case-insensitive) name.
    pub fn new(columns: Vec<Column>) -> DbResult<Self> {
        for (i, c) in columns.iter().enumerate() {
            for other in &columns[i + 1..] {
                if c.name.eq_ignore_ascii_case(&other.name) {
                    return Err(DbError::SchemaError(format!(
                        "duplicate column name '{}'",
                        c.name
                    )));
                }
            }
        }
        Ok(Schema { columns })
    }

    /// Builder-style helper used heavily in tests and generators.
    pub fn build(cols: &[(&str, ColumnType)]) -> Self {
        Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())
            .expect("static schema definitions must not contain duplicates")
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Case-insensitive lookup of a column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Column definition by index.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Lookup that produces a [`DbError::UnknownColumn`] on failure.
    pub fn require(&self, name: &str) -> DbResult<usize> {
        self.index_of(name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Names of all numeric columns, in declaration order.
    pub fn numeric_columns(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.ty.is_numeric())
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Concatenates two schemas, prefixing clashing names with `right_prefix`.
    /// Used by the cross-join operator.
    pub fn join(&self, other: &Schema, right_prefix: &str) -> Schema {
        let mut cols = self.columns.clone();
        for c in &other.columns {
            let name = if self.index_of(&c.name).is_some() {
                format!("{right_prefix}.{}", c.name)
            } else {
                c.name.clone()
            };
            cols.push(Column::new(name, c.ty));
        }
        Schema { columns: cols }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{} {}", c.name, c.ty))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::build(&[
            ("id", ColumnType::Int),
            ("name", ColumnType::Text),
            ("calories", ColumnType::Float),
            ("gluten", ColumnType::Text),
        ])
    }

    #[test]
    fn index_lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("CALORIES"), Some(2));
        assert_eq!(s.index_of("Id"), Some(0));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Column::new("a", ColumnType::Int),
            Column::new("A", ColumnType::Text),
        ]);
        assert!(matches!(r, Err(DbError::SchemaError(_))));
    }

    #[test]
    fn admits_follows_numeric_widening() {
        assert!(ColumnType::Float.admits(&Value::Int(3)));
        assert!(!ColumnType::Int.admits(&Value::Float(3.5)));
        assert!(ColumnType::Text.admits(&Value::Null));
    }

    #[test]
    fn numeric_columns_filters_text() {
        let s = sample();
        assert_eq!(s.numeric_columns(), vec!["id", "calories"]);
    }

    #[test]
    fn join_prefixes_clashing_names() {
        let left = Schema::build(&[("id", ColumnType::Int), ("x", ColumnType::Float)]);
        let right = Schema::build(&[("id", ColumnType::Int), ("y", ColumnType::Float)]);
        let joined = left.join(&right, "r");
        assert_eq!(joined.arity(), 4);
        assert!(joined.index_of("r.id").is_some());
        assert!(joined.index_of("y").is_some());
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::build(&[("a", ColumnType::Int)]);
        assert_eq!(s.to_string(), "(a INT)");
    }
}
