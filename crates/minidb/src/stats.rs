//! Per-column statistics.
//!
//! Cardinality-based pruning (paper Section 4.1) derives package-size bounds
//! from `MIN(col)` and `MAX(col)` over the tuples that satisfy the base
//! constraints. `ColumnStats` precomputes those (plus count/sum/mean, which
//! the greedy heuristics use) in one pass.

use std::collections::BTreeMap;

use crate::error::DbError;
use crate::schema::Schema;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::DbResult;

/// Summary statistics of one numeric column over a set of rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Number of non-NULL values.
    pub count: usize,
    /// Number of NULL values.
    pub nulls: usize,
    /// Minimum non-NULL value (`f64::INFINITY` when `count == 0`).
    pub min: f64,
    /// Maximum non-NULL value (`f64::NEG_INFINITY` when `count == 0`).
    pub max: f64,
    /// Sum of non-NULL values.
    pub sum: f64,
    /// Mean of non-NULL values (0.0 when `count == 0`).
    pub mean: f64,
}

impl ColumnStats {
    /// Statistics of an empty column.
    pub fn empty() -> Self {
        ColumnStats {
            count: 0,
            nulls: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            mean: 0.0,
        }
    }

    /// Folds one value into the statistics.
    pub fn observe(&mut self, v: Option<f64>) {
        match v {
            None => self.nulls += 1,
            Some(x) => {
                self.count += 1;
                self.sum += x;
                if x < self.min {
                    self.min = x;
                }
                if x > self.max {
                    self.max = x;
                }
                self.mean = self.sum / self.count as f64;
            }
        }
    }

    /// True when no non-NULL value was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Statistics for all numeric columns of a relation.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    columns: BTreeMap<String, ColumnStats>,
    rows: usize,
}

impl TableStats {
    /// Computes statistics over all rows of `table`.
    pub fn of_table(table: &Table) -> Self {
        Self::of_row_refs(table.schema(), table.rows().iter())
    }

    /// Computes statistics over an explicit row slice.
    pub fn of_rows(schema: &Schema, rows: &[Tuple]) -> Self {
        Self::of_row_refs(schema, rows.iter())
    }

    /// Computes statistics over borrowed rows in one pass, without
    /// materializing a row vector. This is the path the engine uses to
    /// profile candidate sets: callers stream `&Tuple` references straight
    /// out of the table instead of cloning every candidate row.
    pub fn of_row_refs<'t>(schema: &Schema, rows: impl IntoIterator<Item = &'t Tuple>) -> Self {
        let mut columns: BTreeMap<String, ColumnStats> = schema
            .columns()
            .iter()
            .filter(|c| c.ty.is_numeric())
            .map(|c| (c.name.to_ascii_lowercase(), ColumnStats::empty()))
            .collect();
        let numeric_idx: Vec<(usize, String)> = schema
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ty.is_numeric())
            .map(|(i, c)| (i, c.name.to_ascii_lowercase()))
            .collect();
        let mut row_count = 0usize;
        for row in rows {
            row_count += 1;
            for (idx, name) in &numeric_idx {
                let v = row.get(*idx).and_then(|v| v.as_f64());
                columns.get_mut(name).expect("initialized above").observe(v);
            }
        }
        TableStats {
            columns,
            rows: row_count,
        }
    }

    /// Number of rows the statistics were computed over.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Statistics for one column (case-insensitive).
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(&name.to_ascii_lowercase())
    }

    /// Statistics for one column, erroring when the column is unknown or
    /// non-numeric.
    pub fn require(&self, name: &str) -> DbResult<&ColumnStats> {
        self.column(name).ok_or_else(|| {
            DbError::UnknownColumn(format!("{name} (no numeric statistics available)"))
        })
    }

    /// Names of columns with statistics.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::tuple;
    use crate::value::Value;

    fn table() -> Table {
        let schema = Schema::build(&[
            ("name", ColumnType::Text),
            ("calories", ColumnType::Float),
            ("protein", ColumnType::Float),
        ]);
        let mut t = Table::new("recipes", schema);
        t.insert(tuple!("a", 100.0, 5.0)).unwrap();
        t.insert(tuple!("b", 300.0, 20.0)).unwrap();
        t.insert(Tuple::new(vec![
            Value::Text("c".into()),
            Value::Null,
            Value::Float(10.0),
        ]))
        .unwrap();
        t
    }

    #[test]
    fn stats_cover_numeric_columns_only() {
        let s = TableStats::of_table(&table());
        assert_eq!(s.column_names(), vec!["calories", "protein"]);
        assert!(s.column("name").is_none());
        assert!(s.require("name").is_err());
    }

    #[test]
    fn min_max_sum_mean_nulls() {
        let s = TableStats::of_table(&table());
        let cal = s.column("CALORIES").unwrap();
        assert_eq!(cal.count, 2);
        assert_eq!(cal.nulls, 1);
        assert_eq!(cal.min, 100.0);
        assert_eq!(cal.max, 300.0);
        assert_eq!(cal.sum, 400.0);
        assert_eq!(cal.mean, 200.0);
        assert_eq!(s.row_count(), 3);
    }

    #[test]
    fn borrowed_row_stats_match_owned_rows() {
        let t = table();
        let owned = TableStats::of_rows(t.schema(), t.rows());
        let subset: Vec<&Tuple> = t.rows().iter().take(2).collect();
        let borrowed = TableStats::of_row_refs(t.schema(), subset);
        assert_eq!(owned.row_count(), 3);
        assert_eq!(borrowed.row_count(), 2);
        assert_eq!(borrowed.column("calories").unwrap().max, 300.0);
        assert_eq!(
            owned.column("calories").unwrap().sum,
            TableStats::of_table(&t).column("calories").unwrap().sum
        );
    }

    #[test]
    fn empty_table_stats() {
        let schema = Schema::build(&[("x", ColumnType::Float)]);
        let t = Table::new("t", schema);
        let s = TableStats::of_table(&t);
        let x = s.column("x").unwrap();
        assert!(x.is_empty());
        assert_eq!(x.min, f64::INFINITY);
    }
}
