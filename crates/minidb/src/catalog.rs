//! The catalog: a namespace of tables.

use std::collections::BTreeMap;

use crate::error::DbError;
use crate::table::Table;
use crate::DbResult;

/// A named collection of [`Table`]s.
///
/// PackageBuilder is "an external module which communicates with the DBMS";
/// in this reproduction the catalog plays the role of that DBMS connection.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table, replacing any previous table with the same
    /// (case-insensitive) name.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name().to_ascii_lowercase(), table);
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Looks a table up by name, erroring when absent.
    pub fn require(&self, name: &str) -> DbResult<&Table> {
        self.table(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    /// Removes a table, returning it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.values().map(|t| t.name()).collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    #[test]
    fn register_and_lookup_is_case_insensitive() {
        let mut c = Catalog::new();
        c.register(Table::new(
            "Recipes",
            Schema::build(&[("x", ColumnType::Int)]),
        ));
        assert!(c.table("recipes").is_some());
        assert!(c.table("RECIPES").is_some());
        assert!(c.require("meals").is_err());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn register_replaces_existing() {
        let mut c = Catalog::new();
        c.register(Table::new("t", Schema::build(&[("a", ColumnType::Int)])));
        c.register(Table::new("T", Schema::build(&[("b", ColumnType::Int)])));
        assert_eq!(c.len(), 1);
        assert!(c.table("t").unwrap().schema().index_of("b").is_some());
    }

    #[test]
    fn drop_table_removes() {
        let mut c = Catalog::new();
        c.register(Table::new("t", Schema::build(&[("a", ColumnType::Int)])));
        assert!(c.drop_table("T").is_some());
        assert!(c.is_empty());
    }
}
