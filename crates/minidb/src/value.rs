//! Dynamically typed values stored in tuples.

use std::cmp::Ordering;
use std::fmt;

use crate::error::DbError;
use crate::DbResult;

/// A single cell value.
///
/// `Value` is intentionally small: the PackageBuilder workloads (recipes,
/// flights, hotels, stocks) only need numbers, strings, booleans and NULL.
/// Numeric values keep their integer/float distinction for display purposes
/// but compare and aggregate through [`Value::as_f64`].
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// Returns `true` when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` for `Int` and `Float` values.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Numeric view of the value, if it has one.
    ///
    /// Booleans coerce to 0/1 the way most SQL dialects do when a numeric
    /// context demands it; strings and NULL do not coerce.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Numeric view or an error mentioning `ctx`.
    pub fn expect_f64(&self, ctx: &str) -> DbResult<f64> {
        self.as_f64().ok_or_else(|| {
            DbError::TypeError(format!("expected a numeric value in {ctx}, got {self}"))
        })
    }

    /// Boolean view of the value, if it has one. SQL three-valued logic is
    /// handled by the evaluator; here NULL simply maps to `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            _ => None,
        }
    }

    /// String view of the value, if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (floats are accepted when they are integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            _ => None,
        }
    }

    /// Total ordering across values.
    ///
    /// NULL sorts first, then booleans, then numbers (by numeric value, so
    /// `Int(2) == Float(2.0)`), then text. Float NaNs sort last among
    /// numbers, mirroring `f64::total_cmp` semantics closely enough for
    /// deterministic sorts.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Text(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let x = a.as_f64().unwrap_or(f64::NAN);
                let y = b.as_f64().unwrap_or(f64::NAN);
                x.total_cmp(&y)
            }
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL-style equality: NULL is never equal to anything (including NULL).
    /// Returns `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(match (self, other) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                (a.as_f64().unwrap() - b.as_f64().unwrap()).abs() == 0.0
            }
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        })
    }

    /// SQL-style comparison: `None` when either side is NULL or the values
    /// are not comparable (e.g. text vs number). Numeric comparison is
    /// total: a NaN (which a computed expression can produce even though
    /// loaders never store one) orders after every real number and equal to
    /// itself, instead of silently turning the comparison into `None` and
    /// making predicates NaN-sensitive.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (a, b) if a.is_numeric() && b.is_numeric() => {
                let x = a.as_f64().unwrap();
                let y = b.as_f64().unwrap();
                Some(match (x.is_nan(), y.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    // Plain IEEE compare keeps `-0.0 == 0.0` (which
                    // `total_cmp` would break for SQL equality).
                    (false, false) => {
                        if x < y {
                            Ordering::Less
                        } else if x > y {
                            Ordering::Greater
                        } else {
                            Ordering::Equal
                        }
                    }
                })
            }
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Arithmetic addition with numeric coercion.
    pub fn add(&self, other: &Value) -> DbResult<Value> {
        numeric_binop(self, other, "+", |a, b| a + b)
    }

    /// Arithmetic subtraction with numeric coercion.
    pub fn sub(&self, other: &Value) -> DbResult<Value> {
        numeric_binop(self, other, "-", |a, b| a - b)
    }

    /// Arithmetic multiplication with numeric coercion.
    pub fn mul(&self, other: &Value) -> DbResult<Value> {
        numeric_binop(self, other, "*", |a, b| a * b)
    }

    /// Arithmetic division with numeric coercion. Division by zero yields
    /// NULL, mirroring the permissive behaviour of the demo system.
    pub fn div(&self, other: &Value) -> DbResult<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let a = self.expect_f64("division")?;
        let b = other.expect_f64("division")?;
        if b == 0.0 {
            Ok(Value::Null)
        } else {
            Ok(Value::Float(a / b))
        }
    }

    /// Unary negation.
    pub fn neg(&self) -> DbResult<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(DbError::TypeError(format!("cannot negate {other}"))),
        }
    }
}

fn numeric_binop(a: &Value, b: &Value, op: &str, f: impl Fn(f64, f64) -> f64) -> DbResult<Value> {
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    let x = a.expect_f64(&format!("operator '{op}'"))?;
    let y = b.expect_f64(&format!("operator '{op}'"))?;
    let r = f(x, y);
    // Preserve integer-ness when both inputs are integers and the result is
    // exactly representable.
    if matches!(a, Value::Int(_))
        && matches!(b, Value::Int(_))
        && r.fract() == 0.0
        && r.abs() < 2f64.powi(53)
    {
        Ok(Value::Int(r as i64))
    } else {
        Ok(Value::Float(r))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion_between_int_and_float() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(
            Value::Int(3).add(&Value::Float(0.5)).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(Value::Int(3).add(&Value::Int(4)).unwrap(), Value::Int(7));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).mul(&Value::Null).unwrap().is_null());
        assert!(Value::Int(1).div(&Value::Int(0)).unwrap().is_null());
    }

    #[test]
    fn sql_eq_is_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(
            Value::Text("a".into()).sql_eq(&Value::Text("b".into())),
            Some(false)
        );
    }

    #[test]
    fn sql_cmp_rejects_mixed_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Text("1".into())), None);
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_ordering_is_deterministic() {
        let mut vals = vec![
            Value::Text("zebra".into()),
            Value::Int(10),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(2.5),
                Value::Int(10),
                Value::Text("zebra".into()),
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Text("hi".into()).to_string(), "hi");
    }

    #[test]
    fn string_negation_is_an_error() {
        assert!(Value::Text("x".into()).neg().is_err());
    }

    #[test]
    fn as_i64_accepts_integral_floats_only() {
        assert_eq!(Value::Float(4.0).as_i64(), Some(4));
        assert_eq!(Value::Float(4.5).as_i64(), None);
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
    }

    #[test]
    fn sql_cmp_is_total_over_nan() {
        let nan = Value::Float(f64::NAN);
        // NaN orders after every real number, equal to itself — the
        // comparison stays `Some` so predicates and ORDER BY never lose a
        // row to an undefined comparison.
        assert_eq!(nan.sql_cmp(&Value::Float(1.0)), Some(Ordering::Greater));
        assert_eq!(Value::Float(1.0).sql_cmp(&nan), Some(Ordering::Less));
        assert_eq!(nan.sql_cmp(&Value::Int(i64::MAX)), Some(Ordering::Greater));
        assert_eq!(nan.sql_cmp(&nan), Some(Ordering::Equal));
        // IEEE semantics are preserved for real numbers: -0.0 == 0.0.
        assert_eq!(
            Value::Float(-0.0).sql_cmp(&Value::Float(0.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(nan.sql_cmp(&Value::Null), None);
    }
}
