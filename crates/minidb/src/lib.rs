//! `minidb` — a small in-memory relational engine.
//!
//! This crate is the database substrate for the PackageBuilder reproduction.
//! The original system delegates data storage, base-constraint evaluation and
//! the local-search replacement query to a full DBMS reached over SQL; this
//! crate provides the same capabilities as a library:
//!
//! * typed [`Value`]s, [`Schema`]s, [`Tuple`]s and [`Table`]s,
//! * a scalar [`expr::Expr`] language with an evaluator (selection predicates,
//!   i.e. PaQL *base constraints*),
//! * relational operators in [`ops`] (scan, filter, project, cross join,
//!   aggregate, sort, limit) used by the heuristic local search,
//! * per-column [`stats::ColumnStats`] used by cardinality-based pruning,
//! * CSV import/export in [`csv`].
//!
//! The engine is deliberately single-node and in-memory: package queries in
//! the paper operate on the (usually small) relation that survives the base
//! constraints, so an in-memory row store exercises the relevant code paths.

pub mod catalog;
pub mod csv;
pub mod error;
pub mod eval;
pub mod expr;
pub mod ops;
pub mod schema;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod value;

pub use catalog::Catalog;
pub use error::DbError;
pub use expr::{BinaryOp, Expr, UnaryOp};
pub use schema::{Column, ColumnType, Schema};
pub use table::Table;
pub use tuple::{Tuple, TupleId};
pub use value::Value;

/// Convenience result alias used across the crate.
pub type DbResult<T> = std::result::Result<T, DbError>;
