//! Relational operators over materialized relations.
//!
//! PackageBuilder evaluates its heuristic local search through "a single SQL
//! query ... a selection over a Cartesian product between the candidate
//! package and the recipe relation" (Section 4.2). The operators here provide
//! that query surface: scan, filter, project, cross join, aggregate, sort and
//! limit, all over materialized [`Relation`]s.

use std::collections::BTreeMap;

use crate::error::DbError;
use crate::eval::{eval, eval_predicate};
use crate::expr::Expr;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::DbResult;

/// A materialized intermediate result: a schema and its rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Schema of the rows.
    pub schema: Schema,
    /// The rows.
    pub rows: Vec<Tuple>,
}

impl Relation {
    /// Creates a relation.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        Relation { schema, rows }
    }

    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Scans a table into a relation.
pub fn scan(table: &Table) -> Relation {
    Relation::new(table.schema().clone(), table.rows().to_vec())
}

/// Filters rows by a predicate (NULL does not qualify).
pub fn filter(input: &Relation, predicate: &Expr) -> DbResult<Relation> {
    let mut rows = Vec::new();
    for row in &input.rows {
        if eval_predicate(predicate, &input.schema, row)? {
            rows.push(row.clone());
        }
    }
    Ok(Relation::new(input.schema.clone(), rows))
}

/// Projects expressions into a new relation. Each output column is named by
/// the paired string.
pub fn project(input: &Relation, exprs: &[(String, Expr)]) -> DbResult<Relation> {
    let mut rows = Vec::with_capacity(input.rows.len());
    for row in &input.rows {
        let mut out = Vec::with_capacity(exprs.len());
        for (_, e) in exprs {
            out.push(eval(e, &input.schema, row)?);
        }
        rows.push(Tuple::new(out));
    }
    // Infer output column types from the first row (Float as numeric default).
    let columns: Vec<Column> = exprs
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let ty = rows
                .first()
                .and_then(|r| r.get(i))
                .map(value_type)
                .unwrap_or(ColumnType::Float);
            Column::new(name.clone(), ty)
        })
        .collect();
    Ok(Relation::new(Schema::new(columns)?, rows))
}

fn value_type(v: &Value) -> ColumnType {
    match v {
        Value::Bool(_) => ColumnType::Bool,
        Value::Int(_) => ColumnType::Int,
        Value::Float(_) | Value::Null => ColumnType::Float,
        Value::Text(_) => ColumnType::Text,
    }
}

/// Cartesian product of two relations. Clashing right-hand column names are
/// prefixed with `right_prefix`.
pub fn cross_join(left: &Relation, right: &Relation, right_prefix: &str) -> Relation {
    let schema = left.schema.join(&right.schema, right_prefix);
    let mut rows = Vec::with_capacity(left.len() * right.len());
    for l in &left.rows {
        for r in &right.rows {
            rows.push(l.concat(r));
        }
    }
    Relation::new(schema, rows)
}

/// Aggregate functions supported by [`aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count (ignores the expression).
    Count,
    /// Sum of a numeric expression.
    Sum,
    /// Average of a numeric expression.
    Avg,
    /// Minimum of an expression.
    Min,
    /// Maximum of an expression.
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate to compute.
#[derive(Debug, Clone)]
pub struct Aggregate {
    /// Output column name.
    pub name: String,
    /// Aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored for COUNT(*)).
    pub expr: Option<Expr>,
}

/// Computes grouped aggregates. With an empty `group_by` the result is a
/// single row (even over an empty input, matching SQL semantics for COUNT).
pub fn aggregate(
    input: &Relation,
    group_by: &[String],
    aggregates: &[Aggregate],
) -> DbResult<Relation> {
    let group_idx: Vec<usize> = group_by
        .iter()
        .map(|g| input.schema.require(g))
        .collect::<DbResult<_>>()?;

    let mut groups: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
    for row in &input.rows {
        let key: Vec<Value> = group_idx.iter().map(|&i| row.values()[i].clone()).collect();
        groups.entry(key).or_default().push(row);
    }
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    let mut columns: Vec<Column> = group_by
        .iter()
        .map(|g| {
            input
                .schema
                .column(g)
                .cloned()
                .expect("group key resolved above")
        })
        .collect();
    for a in aggregates {
        let ty = match a.func {
            AggFunc::Count => ColumnType::Int,
            _ => ColumnType::Float,
        };
        columns.push(Column::new(a.name.clone(), ty));
    }

    let mut rows = Vec::with_capacity(groups.len());
    for (key, members) in groups {
        let mut out = key.clone();
        for a in aggregates {
            out.push(compute_aggregate(a, &input.schema, &members)?);
        }
        rows.push(Tuple::new(out));
    }
    Ok(Relation::new(Schema::new(columns)?, rows))
}

fn compute_aggregate(a: &Aggregate, schema: &Schema, rows: &[&Tuple]) -> DbResult<Value> {
    match a.func {
        AggFunc::Count => {
            if let Some(e) = &a.expr {
                let mut n = 0i64;
                for row in rows {
                    if !eval(e, schema, row)?.is_null() {
                        n += 1;
                    }
                }
                Ok(Value::Int(n))
            } else {
                Ok(Value::Int(rows.len() as i64))
            }
        }
        AggFunc::Sum | AggFunc::Avg => {
            let e = a.expr.as_ref().ok_or_else(|| {
                DbError::EvalError(format!("{} requires an expression", a.func.name()))
            })?;
            let mut sum = 0.0;
            let mut n = 0usize;
            for row in rows {
                let v = eval(e, schema, row)?;
                if let Some(x) = v.as_f64() {
                    sum += x;
                    n += 1;
                }
            }
            if n == 0 {
                Ok(Value::Null)
            } else if a.func == AggFunc::Sum {
                Ok(Value::Float(sum))
            } else {
                Ok(Value::Float(sum / n as f64))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let e = a.expr.as_ref().ok_or_else(|| {
                DbError::EvalError(format!("{} requires an expression", a.func.name()))
            })?;
            let mut best: Option<Value> = None;
            for row in rows {
                let v = eval(e, schema, row)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = if a.func == AggFunc::Min {
                            v.total_cmp(&b).is_lt()
                        } else {
                            v.total_cmp(&b).is_gt()
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

/// Sort order for [`sort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// Sorts rows by the given `(column, order)` keys (stable).
pub fn sort(input: &Relation, keys: &[(String, SortOrder)]) -> DbResult<Relation> {
    let resolved: Vec<(usize, SortOrder)> = keys
        .iter()
        .map(|(c, o)| Ok((input.schema.require(c)?, *o)))
        .collect::<DbResult<_>>()?;
    let mut rows = input.rows.clone();
    rows.sort_by(|a, b| {
        for (idx, order) in &resolved {
            let ord = a.values()[*idx].total_cmp(&b.values()[*idx]);
            let ord = if *order == SortOrder::Desc {
                ord.reverse()
            } else {
                ord
            };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Relation::new(input.schema.clone(), rows))
}

/// Keeps only the first `n` rows.
pub fn limit(input: &Relation, n: usize) -> Relation {
    Relation::new(
        input.schema.clone(),
        input.rows.iter().take(n).cloned().collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn recipes() -> Table {
        let schema = Schema::build(&[
            ("name", ColumnType::Text),
            ("calories", ColumnType::Float),
            ("protein", ColumnType::Float),
            ("gluten", ColumnType::Text),
        ]);
        let mut t = Table::new("recipes", schema);
        t.insert(tuple!("oatmeal", 320.0, 12.0, "free")).unwrap();
        t.insert(tuple!("pasta", 640.0, 20.0, "full")).unwrap();
        t.insert(tuple!("salad", 210.0, 6.0, "free")).unwrap();
        t.insert(tuple!("steak", 520.0, 45.0, "free")).unwrap();
        t
    }

    #[test]
    fn scan_filter_project_pipeline() {
        let t = recipes();
        let rel = scan(&t);
        let gf = filter(&rel, &Expr::col("gluten").eq(Expr::lit("free"))).unwrap();
        assert_eq!(gf.len(), 3);
        let proj = project(
            &gf,
            &[
                ("name".to_string(), Expr::col("name")),
                (
                    "cal_per_protein".to_string(),
                    Expr::binary(
                        crate::expr::BinaryOp::Div,
                        Expr::col("calories"),
                        Expr::col("protein"),
                    ),
                ),
            ],
        )
        .unwrap();
        assert_eq!(proj.schema.arity(), 2);
        assert_eq!(proj.len(), 3);
    }

    #[test]
    fn cross_join_sizes_and_prefixing() {
        let t = recipes();
        let rel = scan(&t);
        let joined = cross_join(&rel, &rel, "r");
        assert_eq!(joined.len(), 16);
        assert_eq!(joined.schema.arity(), 8);
        assert!(joined.schema.index_of("r.calories").is_some());
    }

    #[test]
    fn replacement_query_from_the_paper() {
        // "SELECT P0.id, R.id FROM P0, Recipes R
        //  WHERE 3000 - P0.calories + R.calories <= 2500";
        // with this 4-row table the largest saving is 640 - 210 = 430 calories,
        // so the test relaxes the target to 2600 to keep the neighbourhood non-empty.
        let t = recipes();
        let rel = scan(&t);
        // Treat the current package rows as P0 (alias via prefix on join).
        let joined = cross_join(&rel, &rel, "R");
        let pred = Expr::binary(
            crate::expr::BinaryOp::LtEq,
            Expr::binary(
                crate::expr::BinaryOp::Add,
                Expr::binary(
                    crate::expr::BinaryOp::Sub,
                    Expr::lit(3000.0),
                    Expr::col("calories"),
                ),
                Expr::col("R.calories"),
            ),
            Expr::lit(2600.0),
        );
        let candidates = filter(&joined, &pred).unwrap();
        // Replacements that shave at least 400 calories must exist (pasta -> salad).
        assert!(!candidates.is_empty());
        for row in &candidates.rows {
            let out = row.get_f64(&candidates.schema, "calories").unwrap();
            let inn = row.get_f64(&candidates.schema, "R.calories").unwrap();
            assert!(3000.0 - out + inn <= 2600.0);
        }
    }

    #[test]
    fn aggregates_ungrouped() {
        let rel = scan(&recipes());
        let out = aggregate(
            &rel,
            &[],
            &[
                Aggregate {
                    name: "n".into(),
                    func: AggFunc::Count,
                    expr: None,
                },
                Aggregate {
                    name: "total_cal".into(),
                    func: AggFunc::Sum,
                    expr: Some(Expr::col("calories")),
                },
                Aggregate {
                    name: "avg_protein".into(),
                    func: AggFunc::Avg,
                    expr: Some(Expr::col("protein")),
                },
                Aggregate {
                    name: "min_cal".into(),
                    func: AggFunc::Min,
                    expr: Some(Expr::col("calories")),
                },
                Aggregate {
                    name: "max_cal".into(),
                    func: AggFunc::Max,
                    expr: Some(Expr::col("calories")),
                },
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let row = &out.rows[0];
        assert_eq!(row.get_f64(&out.schema, "n").unwrap(), 4.0);
        assert_eq!(row.get_f64(&out.schema, "total_cal").unwrap(), 1690.0);
        assert_eq!(row.get_f64(&out.schema, "min_cal").unwrap(), 210.0);
        assert_eq!(row.get_f64(&out.schema, "max_cal").unwrap(), 640.0);
    }

    #[test]
    fn aggregates_grouped() {
        let rel = scan(&recipes());
        let out = aggregate(
            &rel,
            &["gluten".to_string()],
            &[Aggregate {
                name: "n".into(),
                func: AggFunc::Count,
                expr: None,
            }],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let sorted = sort(&out, &[("gluten".to_string(), SortOrder::Asc)]).unwrap();
        assert_eq!(sorted.rows[0].get_f64(&sorted.schema, "n").unwrap(), 3.0);
        assert_eq!(sorted.rows[1].get_f64(&sorted.schema, "n").unwrap(), 1.0);
    }

    #[test]
    fn aggregate_over_empty_input_yields_single_row() {
        let rel = Relation::empty(Schema::build(&[("x", ColumnType::Float)]));
        let out = aggregate(
            &rel,
            &[],
            &[
                Aggregate {
                    name: "n".into(),
                    func: AggFunc::Count,
                    expr: None,
                },
                Aggregate {
                    name: "s".into(),
                    func: AggFunc::Sum,
                    expr: Some(Expr::col("x")),
                },
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0].values()[0], Value::Int(0));
        assert!(out.rows[0].values()[1].is_null());
    }

    #[test]
    fn sort_and_limit() {
        let rel = scan(&recipes());
        let sorted = sort(&rel, &[("calories".to_string(), SortOrder::Desc)]).unwrap();
        assert_eq!(sorted.rows[0].values()[0], Value::Text("pasta".into()));
        let top2 = limit(&sorted, 2);
        assert_eq!(top2.len(), 2);
    }

    #[test]
    fn sort_unknown_column_errors() {
        let rel = scan(&recipes());
        assert!(sort(&rel, &[("nope".to_string(), SortOrder::Asc)]).is_err());
    }
}
