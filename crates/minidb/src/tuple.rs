//! Tuples (rows) and tuple identifiers.

use std::fmt;

use crate::schema::Schema;
use crate::value::Value;
use crate::DbResult;

/// Identifier of a tuple within its table (its insertion index).
///
/// Package results reference tuples by `TupleId`, so packages stay cheap to
/// copy and compare regardless of tuple width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The identifier as a usize index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A row of values. A tuple on its own does not know its schema; the owning
/// [`crate::Table`] validates values against the schema on insertion.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Values in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at a column index.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value by column name, resolved through `schema`.
    pub fn get_named(&self, schema: &Schema, name: &str) -> DbResult<&Value> {
        let idx = schema.require(name)?;
        Ok(&self.values[idx])
    }

    /// Numeric value by column name (errors on non-numeric columns).
    pub fn get_f64(&self, schema: &Schema, name: &str) -> DbResult<f64> {
        self.get_named(schema, name)?
            .expect_f64(&format!("column '{name}'"))
    }

    /// Concatenation of two tuples (used by the cross-join operator).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Projection onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
        write!(f, "({})", parts.join(", "))
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Convenience macro for building tuples in tests and generators.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnType, Schema};

    #[test]
    fn named_access_resolves_via_schema() {
        let schema = Schema::build(&[("id", ColumnType::Int), ("cal", ColumnType::Float)]);
        let t = tuple!(3, 250.0);
        assert_eq!(t.get_named(&schema, "cal").unwrap(), &Value::Float(250.0));
        assert_eq!(t.get_f64(&schema, "id").unwrap(), 3.0);
        assert!(t.get_named(&schema, "nope").is_err());
    }

    #[test]
    fn concat_and_project() {
        let a = tuple!(1, "x");
        let b = tuple!(2.5, true);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 4);
        let p = c.project(&[3, 0]);
        assert_eq!(p.values(), &[Value::Bool(true), Value::Int(1)]);
    }

    #[test]
    fn tuple_id_display() {
        assert_eq!(TupleId(7).to_string(), "t7");
        assert_eq!(TupleId(7).index(), 7);
    }

    #[test]
    fn display_joins_values() {
        assert_eq!(tuple!(1, "a", 2.5).to_string(), "(1, a, 2.5)");
    }
}
