//! Property-based tests for the relational substrate.

use minidb::csv::{read_table_str, write_table_string};
use minidb::eval::{eval, like_match};
use minidb::ops::{aggregate, cross_join, filter, scan, AggFunc, Aggregate};
use minidb::{ColumnType, Expr, Schema, Table, Tuple, Value};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-zA-Z0-9 _-]{0,12}".prop_map(Value::Text),
    ]
}

fn numeric_table(rows: Vec<(f64, f64)>) -> Table {
    let schema = Schema::build(&[("w", ColumnType::Float), ("v", ColumnType::Float)]);
    let mut t = Table::new("t", schema);
    for (w, v) in rows {
        t.insert(Tuple::new(vec![Value::Float(w), Value::Float(v)]))
            .unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// The total order on values is antisymmetric and transitive (sorting any
    /// triple produces a consistent order).
    #[test]
    fn value_total_order_is_consistent(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity via sort.
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        for w in v.windows(2) {
            prop_assert_ne!(w[0].total_cmp(&w[1]), Ordering::Greater);
        }
    }

    /// CSV write → read round-trips every numeric/text table (modulo type
    /// inference widening ints that look like floats).
    #[test]
    fn csv_round_trips_numeric_tables(rows in prop::collection::vec((-1.0e3f64..1.0e3, -1.0e3f64..1.0e3), 1..30)) {
        let t = numeric_table(rows);
        let csv = write_table_string(&t).unwrap();
        let back = read_table_str("t", &csv).unwrap();
        prop_assert_eq!(t.len(), back.len());
        for (a, b) in t.rows().iter().zip(back.rows()) {
            for (x, y) in a.values().iter().zip(b.values()) {
                let xa = x.as_f64().unwrap();
                let ya = y.as_f64().unwrap();
                prop_assert!((xa - ya).abs() < 1e-9 * (1.0 + xa.abs()));
            }
        }
    }

    /// Filtering never invents rows, and every surviving row satisfies the
    /// predicate.
    #[test]
    fn filter_is_sound(rows in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..50), threshold in 0.0f64..100.0) {
        let t = numeric_table(rows);
        let rel = scan(&t);
        let pred = Expr::col("w").lt_eq(Expr::lit(threshold));
        let out = filter(&rel, &pred).unwrap();
        prop_assert!(out.len() <= rel.len());
        for row in &out.rows {
            prop_assert!(row.get_f64(&out.schema, "w").unwrap() <= threshold);
        }
        let kept_manually = t
            .rows()
            .iter()
            .filter(|r| r.get_f64(t.schema(), "w").unwrap() <= threshold)
            .count();
        prop_assert_eq!(out.len(), kept_manually);
    }

    /// SUM/AVG/MIN/MAX computed by the aggregate operator match a direct fold.
    #[test]
    fn aggregates_match_reference(rows in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40)) {
        let expected_sum: f64 = rows.iter().map(|(w, _)| *w).sum();
        let expected_min = rows.iter().map(|(w, _)| *w).fold(f64::INFINITY, f64::min);
        let expected_max = rows.iter().map(|(w, _)| *w).fold(f64::NEG_INFINITY, f64::max);
        let n = rows.len();
        let t = numeric_table(rows);
        let rel = scan(&t);
        let out = aggregate(
            &rel,
            &[],
            &[
                Aggregate { name: "s".into(), func: AggFunc::Sum, expr: Some(Expr::col("w")) },
                Aggregate { name: "a".into(), func: AggFunc::Avg, expr: Some(Expr::col("w")) },
                Aggregate { name: "lo".into(), func: AggFunc::Min, expr: Some(Expr::col("w")) },
                Aggregate { name: "hi".into(), func: AggFunc::Max, expr: Some(Expr::col("w")) },
                Aggregate { name: "n".into(), func: AggFunc::Count, expr: None },
            ],
        )
        .unwrap();
        let row = &out.rows[0];
        prop_assert!((row.get_f64(&out.schema, "s").unwrap() - expected_sum).abs() < 1e-6);
        prop_assert!((row.get_f64(&out.schema, "a").unwrap() - expected_sum / n as f64).abs() < 1e-6);
        prop_assert!((row.get_f64(&out.schema, "lo").unwrap() - expected_min).abs() < 1e-9);
        prop_assert!((row.get_f64(&out.schema, "hi").unwrap() - expected_max).abs() < 1e-9);
        prop_assert_eq!(row.get_f64(&out.schema, "n").unwrap() as usize, n);
    }

    /// The cross join has exactly |L|·|R| rows and concatenated arity.
    #[test]
    fn cross_join_shape(l in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..12),
                        r in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..12)) {
        let lt = numeric_table(l);
        let rt = numeric_table(r);
        let joined = cross_join(&scan(&lt), &scan(&rt), "r");
        prop_assert_eq!(joined.len(), lt.len() * rt.len());
        prop_assert_eq!(joined.schema.arity(), 4);
    }

    /// LIKE with a pattern built from a literal string matches that string.
    #[test]
    fn like_matches_own_literal(s in "[a-z]{0,10}") {
        prop_assert!(like_match(&s, &s));
        prop_assert!(like_match(&s, "%"));
        let text = format!("{s}suffix");
        let prefix_pattern = format!("{s}%");
        prop_assert!(like_match(&text, &prefix_pattern));
    }

    /// Expression evaluation never panics on arbitrary numeric inputs.
    #[test]
    fn arithmetic_eval_never_panics(w in -1.0e3f64..1.0e3, v in -1.0e3f64..1.0e3, k in -100.0f64..100.0) {
        let schema = Schema::build(&[("w", ColumnType::Float), ("v", ColumnType::Float)]);
        let tuple = Tuple::new(vec![Value::Float(w), Value::Float(v)]);
        let expr = Expr::binary(
            minidb::BinaryOp::Div,
            Expr::binary(minidb::BinaryOp::Mul, Expr::col("w"), Expr::lit(k)),
            Expr::binary(minidb::BinaryOp::Sub, Expr::col("v"), Expr::col("v")),
        );
        // Division by zero yields NULL rather than panicking.
        let out = eval(&expr, &schema, &tuple).unwrap();
        prop_assert!(out.is_null());
    }
}
