//! The rule registry: every workspace invariant `pb-lint` enforces.
//!
//! Each rule encodes one determinism or soundness contract that the
//! architecture section of `ROADMAP.md` states in prose. The registry
//! ([`registry`]) is the single source of truth — the CLI's `--list-rules`,
//! the fixture suite and the suppression machinery all iterate it.
//!
//! | id | invariant | scope |
//! |----|-----------|-------|
//! | [`no-hash-iteration`](NoHashIteration) | `HashMap`/`HashSet` iteration order is nondeterministic; iterating one in production code can leak that order into solver results. Keyed `get`/`insert`/`entry` access is fine. | production code |
//! | [`no-nan-unsafe-ordering`](NoNanUnsafeOrdering) | `partial_cmp` and the NaN-ignoring `f64::max`/`f64::min` fn refs silently reorder under NaN; comparisons must be `total_cmp`-based. | production code |
//! | [`thread-containment`](ThreadContainment) | All threading lives in `par.rs`, `portfolio.rs` and the B&B pool — the three places whose merge discipline makes results thread-count-independent. | everywhere except tests |
//! | [`time-containment`](TimeContainment) | `Instant::now()` belongs to `budget.rs` (the cooperative deadline substrate); any other production site is reporting-only and must say so. | production code |
//! | [`unsafe-audit`](UnsafeAudit) | Every `unsafe` site carries a `SAFETY:` comment (or a `# Safety` doc section for `unsafe fn`). | everywhere |
//! | [`no-panic-in-solver-paths`](NoPanicInSolverPaths) | Solver-reachable code returns `PbError::Internal` instead of panicking; `Mutex`-poison `unwrap`s are exempt (poisoning only follows another panic). | solver paths |
//!
//! A site that genuinely needs an exception carries an allow annotation
//! **with a written justification** on the flagged line or the comment
//! block directly above it:
//!
//! ```text
//! // pb-lint: allow(no-hash-iteration) — eviction takes min_by_key over
//! // unique stamps, so the result is iteration-order-independent.
//! ```
//!
//! Unjustified, unknown-rule and unused annotations are themselves findings
//! (warnings; errors under `--deny-warnings`), so the audit trail cannot
//! rot.

use crate::classify::FileClass;
use crate::lexer::{Line, Tok};

/// Severity of a finding. Rule violations are errors; annotation-hygiene
/// problems are warnings, promoted by `--deny-warnings` (the CI mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warning,
    Error,
}

/// One rule violation (or annotation-hygiene warning) at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `no-hash-iteration`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub severity: Severity,
    /// What fired, with enough context to locate the construct.
    pub message: String,
    /// How to fix it (or how to annotate it away, justified).
    pub hint: &'static str,
}

/// Everything a rule sees about one file. Built once per file by the
/// engine; `norm` caches the per-line whitespace-stripped code channel that
/// the pattern helpers match on.
pub struct FileCtx<'a> {
    pub rel: &'a str,
    pub class: FileClass,
    pub lines: &'a [Line],
    /// Whitespace-stripped code per line (same indexing as `lines`).
    pub norm: &'a [String],
    /// Flat token stream (for rules that follow call chains across lines).
    pub toks: &'a [Tok],
    /// Per-line `#[cfg(test)]`-region mask.
    pub in_test: &'a [bool],
}

impl FileCtx<'_> {
    /// True when 1-based `line` is live production code (not a test region).
    pub fn live(&self, line: usize) -> bool {
        !self
            .in_test
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// One workspace invariant. See the [module docs](self) for the rule table.
pub trait Rule {
    /// Stable id used in findings and `pb-lint: allow(...)` annotations.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules` and the README rule table.
    fn summary(&self) -> &'static str;
    /// Fix guidance attached to every finding.
    fn hint(&self) -> &'static str;
    /// Whether the rule runs on this file at all.
    fn applies(&self, ctx: &FileCtx) -> bool;
    /// Emits findings for this file.
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>);
}

/// Builds the full rule set, in reporting order. This is the only place a
/// new rule needs registering.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoHashIteration),
        Box::new(NoNanUnsafeOrdering),
        Box::new(ThreadContainment),
        Box::new(TimeContainment),
        Box::new(UnsafeAudit),
        Box::new(NoPanicInSolverPaths),
    ]
}

/// Returns true when `haystack` contains `pat` starting/ending on an
/// identifier boundary (so `f64::max` does not match `my_f64::maximum`).
fn find_bounded(haystack: &str, pat: &str) -> Option<usize> {
    let pat_starts_ident = pat
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let mut from = 0;
    while let Some(off) = haystack[from..].find(pat) {
        let at = from + off;
        let pre_ok = !pat_starts_ident
            || at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + pat.len();
        let post_ok = !pat
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
            || !haystack[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

fn mk(rule: &dyn Rule, ctx: &FileCtx, line: usize, message: String) -> Finding {
    Finding {
        rule: rule.id(),
        file: ctx.rel.to_string(),
        line,
        severity: Severity::Error,
        message,
        hint: rule.hint(),
    }
}

// ---------------------------------------------------------------------------
// Rule 1: no-hash-iteration
// ---------------------------------------------------------------------------

/// Bans iterating `HashMap`/`HashSet` in production code.
///
/// Hash iteration order is seed-dependent, so any value derived from it —
/// a sum, a "first match", a work list — breaks the bit-identical
/// `SolveOutcome` contract. The rule does a small flow-free analysis per
/// file: it collects identifiers *declared* with a hash-table type (let
/// bindings, struct fields, fn params, and local `type` aliases of the
/// two), then flags `.iter()`/`.keys()`/`.values()`/`.drain()`/`.retain()`
/// /`for … in` over those identifiers — across rustfmt line breaks, since
/// it matches the token stream, not raw lines. Keyed access (`get`,
/// `insert`, `entry`, `remove`, `contains_key`) never fires.
pub struct NoHashIteration;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

impl Rule for NoHashIteration {
    fn id(&self) -> &'static str {
        "no-hash-iteration"
    }
    fn summary(&self) -> &'static str {
        "HashMap/HashSet iteration is order-nondeterministic; use BTreeMap or keyed access"
    }
    fn hint(&self) -> &'static str {
        "iterate a BTreeMap/Vec instead, or restructure to keyed access; if the \
         consumer is provably order-independent, annotate with a justification"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        ctx.class.is_production()
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        let toks = ctx.toks;
        // Local `type` aliases that name a hash table.
        let mut hash_type_names: Vec<&str> = HASH_TYPES.to_vec();
        for (i, t) in toks.iter().enumerate() {
            if t.text == "type" {
                if let (Some(name), Some(eq)) = (toks.get(i + 1), toks.get(i + 2)) {
                    if eq.text == "=" {
                        let rhs_is_hash = toks[i + 3..]
                            .iter()
                            .take_while(|t| t.text != ";")
                            .any(|t| HASH_TYPES.contains(&t.text.as_str()));
                        if rhs_is_hash {
                            hash_type_names.push(name.text.as_str());
                        }
                    }
                }
            }
        }
        // Identifiers declared with a hash-table type.
        let mut hash_idents: Vec<&str> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if !hash_type_names.contains(&t.text.as_str()) {
                continue;
            }
            // `name: HashMap<..>` (field / let / param), possibly through
            // `&`, `&mut`, `std::collections::` qualification.
            let mut j = i;
            let mut saw_colon = false;
            while j > 0 {
                j -= 1;
                match toks[j].text.as_str() {
                    ":" => saw_colon = true,
                    "&" | "mut" | "std" | "collections" | "<" | ">" => {}
                    _ => break,
                }
            }
            if saw_colon && is_ident(&toks[j].text) {
                hash_idents.push(toks[j].text.as_str());
                continue;
            }
            // `name = HashMap::new()` (untyped let / reassignment).
            if i >= 2 && toks[i - 1].text == "=" && is_ident(&toks[i - 2].text) {
                hash_idents.push(toks[i - 2].text.as_str());
            }
        }
        hash_idents.sort_unstable();
        hash_idents.dedup();
        if hash_idents.is_empty() {
            return;
        }
        // Iteration over a hash-typed identifier.
        for (i, t) in toks.iter().enumerate() {
            if !hash_idents.contains(&t.text.as_str()) {
                continue;
            }
            // `recv.iter()` — the method token carries the reported line,
            // so the allow annotation sits next to the actual call even
            // when rustfmt splits the chain.
            if let (Some(dot), Some(m), Some(paren)) =
                (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
            {
                if dot.text == "." && paren.text == "(" && ITER_METHODS.contains(&m.text.as_str()) {
                    if ctx.live(m.line) {
                        out.push(mk(
                            self,
                            ctx,
                            m.line,
                            format!("`{}.{}()` iterates a hash table", t.text, m.text),
                        ));
                    }
                    continue;
                }
            }
            // `for pat in [&[mut]] recv {`.
            let mut j = i;
            while j > 0 && matches!(toks[j - 1].text.as_str(), "&" | "mut") {
                j -= 1;
            }
            if j > 0
                && toks[j - 1].text == "in"
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("{")
                && ctx.live(t.line)
            {
                out.push(mk(
                    self,
                    ctx,
                    t.line,
                    format!("`for … in {}` iterates a hash table", t.text),
                ));
            }
        }
    }
}

fn is_ident(s: &str) -> bool {
    let mut cs = s.chars();
    cs.next().is_some_and(|c| c.is_alphabetic() || c == '_')
}

// ---------------------------------------------------------------------------
// Rule 2: no-nan-unsafe-ordering
// ---------------------------------------------------------------------------

/// Bans NaN-unsafe float ordering in production code.
///
/// `partial_cmp` returns `None` on NaN (callers then invent an order), and
/// the `f64::max`/`f64::min` *function references* silently drop NaN —
/// both turn a stray NaN into nondeterministic or corrupted ordering (a
/// broken heap, an unstable top-k). Comparisons must go through
/// `f64::total_cmp` (the PR 3 enumerate fix). Defining `fn partial_cmp`
/// (the canonical `Some(self.cmp(other))` delegation) is fine; *calling*
/// it is not. `.max(x)`/`.min(x)` method calls on floats are left to the
/// oracle tests — they are usually clamp idioms, not orderings.
pub struct NoNanUnsafeOrdering;

impl Rule for NoNanUnsafeOrdering {
    fn id(&self) -> &'static str {
        "no-nan-unsafe-ordering"
    }
    fn summary(&self) -> &'static str {
        "partial_cmp / f64::max / f64::min mis-order NaN; use f64::total_cmp"
    }
    fn hint(&self) -> &'static str {
        "compare with f64::total_cmp (or handle NaN explicitly); if NaN is \
         structurally impossible here, annotate with a justification"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        ctx.class.is_production()
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        for (idx, n) in ctx.norm.iter().enumerate() {
            let line = idx + 1;
            if !ctx.live(line) {
                continue;
            }
            if find_bounded(n, ".partial_cmp(").is_some() && !n.contains("fnpartial_cmp(") {
                out.push(mk(
                    self,
                    ctx,
                    line,
                    "`.partial_cmp(..)` call is NaN-unsafe".to_string(),
                ));
            }
            for pat in ["f64::max", "f64::min"] {
                if let Some(at) = find_bounded(n, pat) {
                    // `f64::max(a, b)` calls and bare fn refs both count;
                    // `f64::MAX` style consts do not reach here (case).
                    if !n[at + pat.len()..].starts_with("imum") {
                        out.push(mk(self, ctx, line, format!("`{pat}` ignores NaN operands")));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: thread-containment
// ---------------------------------------------------------------------------

/// Restricts thread creation to the three audited concurrency seams.
///
/// Determinism at every thread count holds because *all* fan-out goes
/// through code whose merge order is fixed: the chunk executor
/// (`core/src/par.rs`), the portfolio race (`core/src/portfolio.rs`) and
/// the B&B worker pool (`lp-solver/src/branch_bound.rs`). A
/// `thread::spawn` anywhere else is an unreviewed ordering hazard.
pub struct ThreadContainment;

/// Files allowed to create threads.
const THREAD_HOMES: &[&str] = &[
    "crates/core/src/par.rs",
    "crates/core/src/portfolio.rs",
    "crates/lp-solver/src/branch_bound.rs",
];

impl Rule for ThreadContainment {
    fn id(&self) -> &'static str {
        "thread-containment"
    }
    fn summary(&self) -> &'static str {
        "threads spawn only in par.rs, portfolio.rs and the B&B pool"
    }
    fn hint(&self) -> &'static str {
        "route the fan-out through ParExec / PortfolioSolver / the B&B Pool, \
         whose chunk-order merges keep results thread-count-independent"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        ctx.class != FileClass::Test && !THREAD_HOMES.contains(&ctx.rel)
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        for (idx, n) in ctx.norm.iter().enumerate() {
            let line = idx + 1;
            if !ctx.live(line) {
                continue;
            }
            for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
                if find_bounded(n, pat).is_some() {
                    out.push(mk(
                        self,
                        ctx,
                        line,
                        format!("`{pat}` outside the audited concurrency seams"),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: time-containment
// ---------------------------------------------------------------------------

/// Keeps wall-clock reads out of solver logic.
///
/// Deadlines flow through `core/src/budget.rs` (`Budget` owns the one
/// authoritative `Instant`); a solver that reads the clock directly can
/// make time-dependent *decisions*, which breaks replayability. Production
/// sites outside `budget.rs` must be reporting-only (stamping
/// `solve_time_ms`) and say so in an annotation.
pub struct TimeContainment;

/// The one file that may own deadline arithmetic unannotated.
const TIME_HOME: &str = "crates/core/src/budget.rs";

impl Rule for TimeContainment {
    fn id(&self) -> &'static str {
        "time-containment"
    }
    fn summary(&self) -> &'static str {
        "Instant::now() lives in budget.rs; other production sites are reporting-only"
    }
    fn hint(&self) -> &'static str {
        "check the cooperative Budget instead; a stats-stamping site gets an \
         annotation stating it never influences control flow"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        ctx.class.is_production() && ctx.rel != TIME_HOME
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        for (idx, n) in ctx.norm.iter().enumerate() {
            let line = idx + 1;
            if !ctx.live(line) {
                continue;
            }
            for pat in ["Instant::now(", "SystemTime::now("] {
                if find_bounded(n, pat).is_some() {
                    out.push(mk(self, ctx, line, format!("`{pat}..)` outside budget.rs")));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: unsafe-audit
// ---------------------------------------------------------------------------

/// Requires a written safety argument at every `unsafe` site.
///
/// Accepted forms, checked in order: a `SAFETY:` marker in the trailing
/// comment of the `unsafe` line itself, a `SAFETY:` marker in the
/// contiguous comment/attribute block directly above it, or (for
/// `unsafe fn` declarations) a `# Safety` rustdoc section. The walk stops
/// at the first non-comment, non-attribute, non-blank line, so a comment
/// cannot accidentally cover two sites. The full inventory — covered or
/// not — is emitted by `pb-lint --unsafe-report`.
pub struct UnsafeAudit;

/// One `unsafe` occurrence for the `--unsafe-report` inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    /// `impl`, `fn` or `block`.
    pub kind: &'static str,
    pub has_safety: bool,
    /// First line of the safety argument, if present.
    pub note: String,
}

/// Scans a file for `unsafe` sites (shared by the rule and the inventory).
/// Works on the token stream — whitespace between `unsafe` and the `fn` /
/// `impl` / `{` that follows carries no meaning. One site per line (an
/// `unsafe { … }` chain on a single line is one reviewable unit).
pub fn unsafe_sites(ctx: &FileCtx) -> Vec<UnsafeSite> {
    let mut out: Vec<UnsafeSite> = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.text != "unsafe" {
            continue;
        }
        if out.last().is_some_and(|s| s.line == t.line) {
            continue;
        }
        let kind = match ctx.toks.get(i + 1).map(|n| n.text.as_str()) {
            Some("impl") => "impl",
            Some("fn") => "fn",
            _ => "block",
        };
        let (has_safety, note) = safety_comment_for(ctx, t.line - 1);
        out.push(UnsafeSite {
            file: ctx.rel.to_string(),
            line: t.line,
            kind,
            has_safety,
            note,
        });
    }
    out
}

/// Looks for a safety argument covering the unsafe site at 0-based `idx`.
fn safety_comment_for(ctx: &FileCtx, idx: usize) -> (bool, String) {
    let is_marker = |c: &str| c.contains("SAFETY") || c.contains("# Safety");
    let trailing = &ctx.lines[idx].comment;
    if is_marker(trailing) {
        return (true, trailing.trim().to_string());
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let l = &ctx.lines[j];
        let code = l.code.trim();
        let pure_comment = code.is_empty() && !l.comment.is_empty();
        if pure_comment || code.starts_with("#[") {
            if is_marker(&l.comment) {
                return (true, l.comment.trim().to_string());
            }
            continue;
        }
        break; // real code or a blank separator-with-no-comment
    }
    (false, String::new())
}

impl Rule for UnsafeAudit {
    fn id(&self) -> &'static str {
        "unsafe-audit"
    }
    fn summary(&self) -> &'static str {
        "every unsafe block/impl/fn carries a SAFETY: comment"
    }
    fn hint(&self) -> &'static str {
        "state the invariant that makes the site sound in a `// SAFETY:` \
         comment directly above it (or a `# Safety` doc section on an unsafe fn)"
    }
    fn applies(&self, _ctx: &FileCtx) -> bool {
        true
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        for site in unsafe_sites(ctx) {
            if !site.has_safety {
                out.push(mk(
                    self,
                    ctx,
                    site.line,
                    format!("`unsafe` {} without a SAFETY: comment", site.kind),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 6: no-panic-in-solver-paths
// ---------------------------------------------------------------------------

/// Bans panicking constructs in solver-reachable code.
///
/// A panic inside `Solver::solve` tears down the caller's thread (or a
/// portfolio worker) instead of returning `PbError::Internal`; the engine
/// validates results anyway, so a recoverable error is strictly better.
/// Flags `.unwrap()`, `.expect(..)`, `panic!`, `unreachable!`, `todo!` and
/// `unimplemented!`. Two built-in exemptions: `Mutex::lock().unwrap()` and
/// `Condvar::wait(..).unwrap()` — lock poisoning only occurs after another
/// thread already panicked, and re-raising is the correct containment.
/// `assert!`/`debug_assert!` stay allowed: they are deliberate invariant
/// checks, not accidental panics.
pub struct NoPanicInSolverPaths;

impl Rule for NoPanicInSolverPaths {
    fn id(&self) -> &'static str {
        "no-panic-in-solver-paths"
    }
    fn summary(&self) -> &'static str {
        "solver-reachable code returns PbError::Internal instead of panicking"
    }
    fn hint(&self) -> &'static str {
        "convert to `PbError::Internal` (or `LpError`) and propagate; a \
         provably-unreachable site keeps the panic but gains an annotation \
         stating the invariant"
    }
    fn applies(&self, ctx: &FileCtx) -> bool {
        ctx.class.is_solver()
    }
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        for (idx, n) in ctx.norm.iter().enumerate() {
            let line = idx + 1;
            if !ctx.live(line) {
                continue;
            }
            // `.unwrap()` with the poison-idiom exemption.
            let mut from = 0;
            while let Some(off) = n[from..].find(".unwrap()") {
                let at = from + off;
                let pre = &n[..at];
                let poison_idiom = pre.ends_with("lock()") || pre.contains(".wait(");
                if !poison_idiom {
                    out.push(mk(
                        self,
                        ctx,
                        line,
                        "`.unwrap()` in solver path".to_string(),
                    ));
                    break; // one finding per line is enough
                }
                from = at + 1;
            }
            if n.contains(".expect(") {
                out.push(mk(
                    self,
                    ctx,
                    line,
                    "`.expect(..)` in solver path".to_string(),
                ));
            }
            for pat in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
                if find_bounded(n, pat).is_some() {
                    out.push(mk(self, ctx, line, format!("`{}..)` in solver path", pat)));
                }
            }
        }
    }
}
