//! The analysis driver: file walking, annotation handling, suppression.
//!
//! [`run_workspace`] walks every `.rs` file in the workspace (skipping
//! `target/`, VCS metadata and `pb-lint`'s own known-bad fixtures), runs the
//! [rule registry](crate::rules::registry) over each, applies
//! `pb-lint: allow(...)` annotations, and appends annotation-hygiene
//! findings (unjustified / unknown-rule / unused allows) so the suppression
//! mechanism itself stays honest.

use std::io;
use std::path::{Path, PathBuf};

use crate::classify::{classify, FileClass};
use crate::lexer;
use crate::rules::{registry, unsafe_sites, FileCtx, Finding, Severity, UnsafeSite};

/// A parsed `pb-lint: allow(rule)` annotation.
#[derive(Debug)]
struct Allow {
    /// 1-based line of the annotation comment itself.
    at: usize,
    /// 1-based code line the annotation covers (its own line when it trails
    /// code, otherwise the next line that has code).
    covers: usize,
    rule: String,
    /// Justification text on the annotation line (after the closing paren).
    justification: String,
    used: bool,
}

/// Result of a full workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Every `unsafe` site in the workspace (covered or not).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of files analyzed.
    pub files: usize,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }
    /// Whether this report fails the build under the given warning policy.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }
}

/// Analyzes one file's source text. Exposed for the fixture suite, which
/// feeds snippets under a forced classification.
pub fn analyze_source(rel: &str, class: FileClass, src: &str) -> Vec<Finding> {
    analyze_full(rel, class, src).0
}

/// Full per-file analysis: suppressed findings + the unsafe inventory.
pub fn analyze_full(rel: &str, class: FileClass, src: &str) -> (Vec<Finding>, Vec<UnsafeSite>) {
    let lines = lexer::strip(src);
    let norm: Vec<String> = lines
        .iter()
        .map(|l| l.code.chars().filter(|c| !c.is_whitespace()).collect())
        .collect();
    let toks = lexer::tokens(&lines);
    let in_test = lexer::test_regions(&lines);
    let ctx = FileCtx {
        rel,
        class,
        lines: &lines,
        norm: &norm,
        toks: &toks,
        in_test: &in_test,
    };

    let mut raw = Vec::new();
    for rule in registry() {
        if rule.applies(&ctx) {
            rule.check(&ctx, &mut raw);
        }
    }

    let mut allows = collect_allows(&lines);
    let known: Vec<&'static str> = registry().iter().map(|r| r.id()).collect();

    // Suppression: a finding survives unless an allow for its rule covers
    // its line.
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.covers == f.line && a.rule == f.rule {
                a.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }

    // Annotation hygiene: the audit trail itself is checked.
    for a in &allows {
        if !known.contains(&a.rule.as_str()) {
            findings.push(hygiene(
                rel,
                a.at,
                format!("allow annotation names unknown rule `{}`", a.rule),
            ));
        } else if a.justification.len() < 8 {
            findings.push(hygiene(
                rel,
                a.at,
                format!(
                    "allow({}) needs a written justification on the annotation line",
                    a.rule
                ),
            ));
        } else if !a.used {
            findings.push(hygiene(
                rel,
                a.at,
                format!(
                    "allow({}) suppresses nothing — remove the stale annotation",
                    a.rule
                ),
            ));
        }
    }

    findings.sort_by_key(|f| f.line);
    (findings, unsafe_sites(&ctx))
}

fn hygiene(rel: &str, line: usize, message: String) -> Finding {
    Finding {
        rule: "allow-hygiene",
        file: rel.to_string(),
        line,
        severity: Severity::Warning,
        message,
        hint: "format: `// pb-lint: allow(<rule>) — <why this site is sound>`",
    }
}

/// Extracts `pb-lint: allow(rule) — justification` annotations and computes
/// which code line each one covers.
fn collect_allows(lines: &[lexer::Line]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        // Anchored at the start of the comment (doc-comment `!` markers
        // aside) so prose and rustdoc examples that *mention* annotations —
        // like the ones in this crate's own docs — never parse as one.
        let text = l.comment.trim_start_matches('!').trim();
        let Some(rest) = text.strip_prefix("pb-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(open) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = open.find(')') else {
            continue;
        };
        let rule = open[..close].trim().to_string();
        let justification: String = open[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
            .trim()
            .to_string();
        // The annotation covers its own line when that line has code
        // (trailing comment), otherwise the next line carrying code.
        let covers = if !l.code.trim().is_empty() {
            idx + 1
        } else {
            lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, nl)| !nl.code.trim().is_empty())
                .map(|(j, _)| j + 1)
                .unwrap_or(idx + 1)
        };
        out.push(Allow {
            at: idx + 1,
            covers,
            rule,
            justification,
            used: false,
        });
    }
    out
}

/// Directories never descended into.
fn skip_dir(name: &str) -> bool {
    name == "target" || name.starts_with('.')
}

/// Walks the workspace and analyzes every `.rs` file.
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        // pb-lint's fixtures are deliberately rule-violating snippets.
        if rel.starts_with("crates/pb-lint/tests/fixtures/") {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        let (findings, sites) = analyze_full(&rel, classify(&rel), &src);
        report.findings.extend(findings);
        report.unsafe_sites.extend(sites);
        report.files += 1;
    }
    report.findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    Ok(report)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trailing_and_preceding_allows_cover_the_right_line() {
        let src = "\
// pb-lint: allow(no-panic-in-solver-paths) — invariant: slot filled above.
let x = opt.unwrap();
let y = opt.unwrap(); // pb-lint: allow(no-panic-in-solver-paths) — same invariant here.
let z = opt.unwrap();
";
        let findings = analyze_source("crates/core/src/ilp.rs", FileClass::SolverPath, src);
        let panics: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "no-panic-in-solver-paths")
            .collect();
        assert_eq!(panics.len(), 1, "{findings:?}");
        assert_eq!(panics[0].line, 4);
    }

    #[test]
    fn unjustified_unknown_and_stale_allows_warn() {
        let src = "\
// pb-lint: allow(no-panic-in-solver-paths)
let x = opt.unwrap();
// pb-lint: allow(not-a-rule) — some justification text here.
let y = 1;
// pb-lint: allow(no-panic-in-solver-paths) — nothing to suppress on the next line.
let z = 2;
";
        let findings = analyze_source("crates/core/src/ilp.rs", FileClass::SolverPath, src);
        let hygiene: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "allow-hygiene")
            .collect();
        assert_eq!(hygiene.len(), 3, "{findings:?}");
        assert!(hygiene.iter().all(|f| f.severity == Severity::Warning));
        // The unjustified allow still suppresses; only the hygiene warning
        // remains for that site.
        assert!(findings
            .iter()
            .all(|f| !(f.rule == "no-panic-in-solver-paths" && f.line == 2)));
    }

    #[test]
    fn findings_inside_cfg_test_modules_are_masked() {
        let src = "\
pub fn live() -> u32 {
    0
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x: Option<u32> = None;
        x.unwrap();
        let t = std::time::Instant::now();
        let _ = t;
    }
}
";
        let findings = analyze_source("crates/core/src/ilp.rs", FileClass::SolverPath, src);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
