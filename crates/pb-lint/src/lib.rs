//! `pb-lint` — the workspace determinism & soundness analyzer.
//!
//! Every scaling PR in this repo rests on one contract: **same query + seed
//! ⇒ bit-identical `SolveOutcome` at every thread count and storage mode**.
//! That contract is what lets the parallel branch-and-bound, the paged
//! column substrate and the sketch→refine hierarchy be verified by identity
//! against a sequential reference. It is upheld by a handful of coding
//! invariants (no hash iteration, total float ordering, thread and time
//! containment, audited `unsafe`, no solver-path panics) that used to live
//! only in prose and post-hoc property tests. This crate turns them into a
//! pre-merge static pass.
//!
//! The analyzer is deliberately *zero-dependency*: a custom line/token-level
//! lexer ([`lexer`]) that understands comments, strings, raw strings and
//! char literals (so rules never fire inside them), a path-based file
//! classifier ([`mod@classify`]), a rule registry ([`rules`]) and a driver with
//! allow-annotation and suppression-hygiene handling ([`engine`]).
//!
//! # Running
//!
//! ```text
//! cargo run -p pb-lint                     # report findings
//! cargo run -p pb-lint -- --deny-warnings  # CI mode: warnings fail too
//! cargo run -p pb-lint -- --unsafe-report  # audit inventory of unsafe sites
//! cargo run -p pb-lint -- --list-rules     # rule table
//! ```
//!
//! # Suppressing a finding
//!
//! A site that genuinely needs an exception carries an annotation **with a
//! written justification**, either trailing the flagged line or in the
//! comment block directly above it:
//!
//! ```text
//! // pb-lint: allow(time-containment) — reporting only: stamps
//! // solve_time_ms on the outcome; never influences control flow.
//! let start = std::time::Instant::now();
//! ```
//!
//! Annotations are themselves audited: missing justifications, unknown rule
//! ids and stale (suppressing-nothing) allows are warnings, and CI runs
//! with `--deny-warnings`.

pub mod classify;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use classify::{classify, FileClass};
pub use engine::{analyze_full, analyze_source, run_workspace, Report};
pub use rules::{registry, Finding, Rule, Severity, UnsafeSite};
