//! CLI for the workspace analyzer. See the crate docs for rule semantics.

use std::path::PathBuf;
use std::process::ExitCode;

use pb_lint::{registry, run_workspace, Severity};

const USAGE: &str = "\
pb-lint — workspace determinism & soundness analyzer

USAGE:
    cargo run -p pb-lint [-- OPTIONS]

OPTIONS:
    --deny-warnings    exit nonzero on warnings too (the CI mode)
    --unsafe-report    print the unsafe-site inventory and exit 0
    --list-rules       print the rule table and exit 0
    --root <PATH>      workspace root to analyze (default: auto-discover)
    --help             this text
";

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut unsafe_report = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--unsafe-report" => unsafe_report = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        println!("{:<26} summary", "rule");
        println!("{:-<26} {:-<50}", "", "");
        for rule in registry() {
            println!("{:<26} {}", rule.id(), rule.summary());
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(discover_root);
    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pb-lint: cannot analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if unsafe_report {
        println!("# unsafe inventory ({} sites)", report.unsafe_sites.len());
        println!();
        println!("| file | line | kind | SAFETY | argument |");
        println!("|------|------|------|--------|----------|");
        for s in &report.unsafe_sites {
            let mark = if s.has_safety { "yes" } else { "**MISSING**" };
            let note = s.note.replace('|', "\\|");
            println!(
                "| {} | {} | {} | {} | {} |",
                s.file, s.line, s.kind, mark, note
            );
        }
        return ExitCode::SUCCESS;
    }

    for f in &report.findings {
        let sev = match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        println!("{sev}[{}] {}:{}: {}", f.rule, f.file, f.line, f.message);
        println!("    hint: {}", f.hint);
    }
    let uncovered = report.unsafe_sites.iter().filter(|s| !s.has_safety).count();
    println!(
        "pb-lint: {} files, {} errors, {} warnings, {} unsafe sites ({} uncovered)",
        report.files,
        report.errors(),
        report.warnings(),
        report.unsafe_sites.len(),
        uncovered,
    );
    if report.failed(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Finds the workspace root: the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]` (falling back to `.`).
fn discover_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
