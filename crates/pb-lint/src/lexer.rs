//! A lightweight, line-oriented Rust lexer.
//!
//! `pb-lint` has no access to `syn` or any registry crate, and it does not
//! need full parsing: every rule it enforces is expressible over a token
//! stream with accurate line numbers — *provided* the stream never contains
//! text from comments, string literals, character literals or raw strings.
//! This module does exactly that split: [`strip`] walks the source once with
//! a small state machine and produces, per line,
//!
//! * `code` — the source text with comment bodies and literal *contents*
//!   blanked out (delimiters are kept so tokens never merge across a blanked
//!   region), and
//! * `comment` — the concatenated comment text of the line, which is where
//!   `SAFETY:` justifications and `pb-lint: allow(...)` annotations live.
//!
//! Handled: nested `/* */` block comments, `//` line comments (doc variants
//! included), string literals with escapes, raw strings `r"…"`/`r#"…"#` (any
//! hash depth, `b`/`br` prefixes), character literals, and the
//! lifetime-vs-char-literal ambiguity (`'a` vs `'a'`).

/// One source line after comment/literal stripping.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text with comments removed and literal contents blanked.
    pub code: String,
    /// Concatenated comment text (line and block comments) on this line.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Splits `source` into per-line code and comment channels.
pub fn strip(source: &str) -> Vec<Line> {
    let b: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut st = State::Code;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            if st == State::LineComment {
                st = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                match c {
                    '/' if b.get(i + 1) == Some(&'/') => {
                        st = State::LineComment;
                        i += 2;
                        continue;
                    }
                    '/' if b.get(i + 1) == Some(&'*') => {
                        st = State::BlockComment(1);
                        // Keep a space so tokens around the comment stay split.
                        cur.code.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        cur.code.push('"');
                        st = State::Str;
                        i += 1;
                        continue;
                    }
                    'r' | 'b' if !prev_is_ident(&cur.code) => {
                        // Possible raw/byte string start: r", r#", b", br#"…
                        if let Some((hashes, len)) = raw_string_open(&b, i) {
                            cur.code.push('"');
                            st = State::RawStr(hashes);
                            i += len;
                            continue;
                        }
                        cur.code.push(c);
                        i += 1;
                        continue;
                    }
                    '\'' => {
                        // Lifetime (`'a`) or char literal (`'a'`, `'\n'`)?
                        if b.get(i + 1) == Some(&'\\')
                            || (b.get(i + 2) == Some(&'\'') && b.get(i + 1) != Some(&'\''))
                        {
                            cur.code.push('\'');
                            st = State::Char;
                            i += 1;
                            continue;
                        }
                        // Lifetime: keep the quote, stay in code.
                        cur.code.push('\'');
                        i += 1;
                        continue;
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                        continue;
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    if depth == 1 {
                        st = State::Code;
                    } else {
                        st = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(depth + 1);
                    cur.comment.push_str("/*");
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    if b.get(i + 1).is_some() {
                        cur.code.push(' ');
                    }
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&b, i, hashes) {
                    cur.code.push('"');
                    st = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    cur.code.push(' ');
                    if b.get(i + 1).is_some() {
                        cur.code.push(' ');
                    }
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    st = State::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// True when the code buffer ends in an identifier character — in that case
/// a following `r`/`b` is part of an identifier, not a raw-string prefix.
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If `b[i..]` opens a raw or byte string (`r"`, `r#"`, `b"`, `br##"`, …),
/// returns `(hash_count, consumed_chars)` for the opener.
fn raw_string_open(b: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if b.get(j) == Some(&'"') {
            return Some((0, j - i + 1)); // b"…"
        }
        if b.get(j) != Some(&'r') {
            return None;
        }
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// True when the `"` at `b[i]` is followed by `hashes` `#` characters,
/// closing a raw string of that depth.
fn closes_raw(b: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| b.get(i + k) == Some(&'#'))
}

/// One code token: an identifier (including keywords) or a single
/// punctuation character, with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    pub text: String,
    pub line: usize,
}

/// Flattens the code channel into a token stream. Identifiers/keywords come
/// out whole; everything else (except whitespace) is a single-character
/// token. Rules that must follow a call chain across rustfmt's line breaks
/// (`pool\n.frames\n.iter()`) match on this stream instead of raw lines.
pub fn tokens(lines: &[Line]) -> Vec<Tok> {
    let mut out = Vec::new();
    for (ln, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: ln + 1,
                });
            } else {
                out.push(Tok {
                    text: c.to_string(),
                    line: ln + 1,
                });
                i += 1;
            }
        }
    }
    out
}

/// Marks the lines belonging to `#[cfg(test)] mod … { … }` regions (1-based
/// indexing into the returned vec is off by one: `v[i]` covers line `i+1`).
///
/// Rules skip these regions: test code legitimately unwraps, spawns threads
/// and measures time. Files under a `tests/` directory are classified
/// [`crate::classify::FileClass::Test`] wholesale and never reach this
/// per-region path.
pub fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Scan forward for the `mod … {` this attribute decorates,
            // tolerating further attributes and blank lines in between. A
            // `mod name;` (out-of-line module) has no body here; skip it.
            let mut j = i + 1;
            let mut found = None;
            while j < lines.len() && j <= i + 8 {
                let code = lines[j].code.trim();
                if code.is_empty() || code.starts_with("#[") {
                    j += 1;
                    continue;
                }
                if code.starts_with("mod ") || code.starts_with("pub mod ") {
                    if code.contains(';') {
                        break; // out-of-line module
                    }
                    found = Some(j);
                }
                break;
            }
            if let Some(start) = found {
                // Walk the brace depth from the module header to its close.
                let mut depth = 0i64;
                let mut opened = false;
                let mut k = start;
                while k < lines.len() {
                    depth += brace_delta(&lines[k].code);
                    if lines[k].code.contains('{') {
                        opened = true;
                    }
                    if opened && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                let end = k.min(lines.len() - 1);
                for m in mask.iter_mut().take(end + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let a = 1; // trailing note\n/* block */ let b = 2;\n";
        let lines = strip(src);
        assert_eq!(lines[0].code.trim_end(), "let a = 1;");
        assert_eq!(lines[0].comment, " trailing note");
        assert!(lines[1].code.contains("let b = 2;"));
        assert_eq!(lines[1].comment, " block ");
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ code();\n";
        let lines = strip(src);
        assert!(lines[0].code.contains("code();"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_remain() {
        let src = "let s = \"panic!(.unwrap()) // not a comment\"; f();\n";
        let lines = strip(src);
        assert!(!lines[0].code.contains("panic"));
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.is_empty());
        assert!(lines[0].code.contains("f();"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"thread::spawn \"quoted\" inside\"#; g();\n";
        let lines = strip(src);
        assert!(!lines[0].code.contains("spawn"));
        assert!(lines[0].code.contains("g();"));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; h(); }\n";
        let lines = strip(src);
        // The double-quote char literal must not open a string state.
        assert!(lines[0].code.contains("h();"));
        assert!(!lines[0].code.contains('y'));
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let src = "let s = \"a\\\"b.unwrap()\"; k();\n";
        let lines = strip(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("k();"));
    }

    #[test]
    fn token_stream_spans_lines() {
        let src = "pool\n    .frames\n    .iter()\n";
        let toks = tokens(&strip(src));
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["pool", ".", "frames", ".", "iter", "(", ")"]);
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[4].line, 3);
    }

    #[test]
    fn cfg_test_module_region_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = strip(src);
        let mask = test_regions(&lines);
        assert!(!mask[0]);
        assert!(mask[1] && mask[2] && mask[3] && mask[4]);
        assert!(!mask[5]);
    }

    #[test]
    fn out_of_line_test_module_is_not_a_region() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() {}\n";
        let mask = test_regions(&strip(src));
        assert!(!mask[2]);
    }
}
