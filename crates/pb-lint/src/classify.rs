//! Module-path classification: which invariants a file must uphold.
//!
//! Every rule declares the [`FileClass`]es it applies to; classification is
//! purely path-based so the mapping is auditable at a glance (and cheap).
//! The split mirrors the architecture section of `ROADMAP.md`:
//!
//! * **SolverPath** — code a `Solver::solve` call can reach: everything a
//!   determinism or soundness bug in which silently corrupts query answers.
//! * **Infra** — storage, caching, configuration and error plumbing. Still
//!   production code (thread/time containment and the unsafe audit apply),
//!   but keyed `HashMap` access and `panic!` on I/O corruption are
//!   legitimate here.
//! * **Bench** — the bench harness and data generators; they time things
//!   and print, by design.
//! * **Test** — integration test trees (`tests/` directories). In-file
//!   `#[cfg(test)]` modules are masked line-wise by
//!   [`crate::lexer::test_regions`] instead.
//! * **Example** — runnable walkthroughs under `examples/`.
//! * **Shim** — the offline stand-ins for registry crates under
//!   `crates/shims/`; API fidelity beats house style there.
//! * **Tool** — `pb-lint` itself and any future dev-tooling.

/// The enforcement class of one source file. See the module docs for what
/// each class means; rules pick their scope via [`FileClass::is_solver`]
/// and friends or by matching explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Solver-reachable engine code (`crates/core`, `crates/lp-solver`).
    SolverPath,
    /// Production infrastructure: storage, cache, config, parsing.
    Infra,
    /// Benchmarks and data generation.
    Bench,
    /// Integration tests (`tests/` trees).
    Test,
    /// Examples.
    Example,
    /// Offline shims for registry crates.
    Shim,
    /// Developer tooling (including this crate).
    Tool,
}

impl FileClass {
    /// Solver-reachable code — the strictest rule set.
    pub fn is_solver(self) -> bool {
        matches!(self, FileClass::SolverPath)
    }

    /// Code that ships in the library product (solver paths + infra).
    pub fn is_production(self) -> bool {
        matches!(self, FileClass::SolverPath | FileClass::Infra)
    }
}

/// Files in `crates/core/src` that are *not* solver-reachable hot paths:
/// the cross-query cache, the out-of-core page store, configuration, error
/// types and the crate façade. Everything else in `core` is solver code.
const CORE_INFRA: &[&str] = &[
    "cache.rs",
    "column_store.rs",
    "config.rs",
    "error.rs",
    "lib.rs",
];

/// Classifies a workspace-relative path (`/`-separated).
pub fn classify(rel: &str) -> FileClass {
    let rel = rel.replace('\\', "/");
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"tests") {
        return FileClass::Test;
    }
    if parts.contains(&"examples") {
        return FileClass::Example;
    }
    if rel.starts_with("crates/shims/") {
        return FileClass::Shim;
    }
    if rel.starts_with("crates/pb-lint/") {
        return FileClass::Tool;
    }
    if rel.starts_with("crates/bench/") || rel.starts_with("crates/datagen/") {
        return FileClass::Bench;
    }
    if rel.starts_with("crates/core/src/") {
        let file = parts.last().copied().unwrap_or("");
        if CORE_INFRA.contains(&file) {
            return FileClass::Infra;
        }
        return FileClass::SolverPath;
    }
    if rel.starts_with("crates/lp-solver/src/") {
        return FileClass::SolverPath;
    }
    if rel.starts_with("crates/minidb/") || rel.starts_with("crates/paql/") {
        return FileClass::Infra;
    }
    // The umbrella crate's `src/lib.rs`, benches, build scripts, …
    FileClass::Infra
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_architecture_split() {
        assert_eq!(classify("crates/core/src/ilp.rs"), FileClass::SolverPath);
        assert_eq!(classify("crates/core/src/par.rs"), FileClass::SolverPath);
        assert_eq!(classify("crates/core/src/cache.rs"), FileClass::Infra);
        assert_eq!(
            classify("crates/core/src/column_store.rs"),
            FileClass::Infra
        );
        assert_eq!(
            classify("crates/lp-solver/src/simplex.rs"),
            FileClass::SolverPath
        );
        assert_eq!(classify("crates/minidb/src/value.rs"), FileClass::Infra);
        assert_eq!(classify("crates/paql/src/parser.rs"), FileClass::Infra);
        assert_eq!(classify("crates/core/tests/view_cache.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
        assert_eq!(classify("crates/shims/rand/src/lib.rs"), FileClass::Shim);
        assert_eq!(
            classify("crates/bench/src/bin/harness.rs"),
            FileClass::Bench
        );
        assert_eq!(classify("crates/datagen/src/travel.rs"), FileClass::Bench);
        assert_eq!(classify("crates/pb-lint/src/main.rs"), FileClass::Tool);
        assert_eq!(classify("src/lib.rs"), FileClass::Infra);
    }
}
