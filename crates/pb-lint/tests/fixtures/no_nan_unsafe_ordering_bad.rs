// Known-bad: NaN-unsafe orderings the rule must catch.
pub fn worst(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

pub fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

pub fn ordered(a: f64, b: f64) -> bool {
    matches!(a.partial_cmp(&b), Some(std::cmp::Ordering::Less))
}
