// Known-good: fan-out through ParExec; thread::spawn only in prose/strings.
pub fn run(par: pb_core::par::ParExec, n: usize) -> Vec<u64> {
    // A rogue thread::spawn here would fire; routing through the chunk
    // executor does not (comment mentions never fire).
    par.run_chunks(n, |c, r| (c + r.len()) as u64)
}

pub const DOC: &str = "std::thread::spawn inside a string never fires";
