// Known-good: an annotated reporting-only site, and mentions in
// comments/strings. Instant::now() in this comment never fires.
pub fn solve_stats() -> u64 {
    // pb-lint: allow(time-containment) — reporting only: stamps the
    // outcome's elapsed time; deadline decisions go through the budget.
    let start = std::time::Instant::now();
    start.elapsed().as_millis() as u64
}

pub const DOC: &str = "Instant::now() inside a string never fires";
