// Known-good: keyed access, ordered maps, and mentions inside comments or
// strings must never fire.
use std::collections::{BTreeMap, HashMap};

pub fn lookup(prices: &HashMap<u64, f64>, id: u64) -> Option<f64> {
    // Keyed access is fine; iterating prices.iter() would not be (comment
    // mentions never fire).
    prices.get(&id).copied()
}

pub fn update(prices: &mut HashMap<u64, f64>, id: u64, v: f64) {
    prices.insert(id, v);
    prices.entry(id).or_insert(v);
    prices.remove(&id);
}

pub fn ordered_total(ordered: &BTreeMap<u64, f64>) -> f64 {
    let mut sum = 0.0;
    for (_, v) in ordered {
        sum += v;
    }
    sum
}

pub const DOC: &str = "for (k, v) in &my_hash_map { } — a string, not code";
