// Known-bad: panicking constructs reachable from Solver::solve.
pub fn pick(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    let second = xs.get(1).expect("caller passed two");
    if xs.len() > 9 {
        panic!("too many candidates");
    }
    match xs.len() {
        0 => unreachable!(),
        _ => {}
    }
    *first + *second
}
