// Known-good: total comparison, the canonical PartialOrd delegation, the
// f64::MAX const, and mentions in comments/strings must never fire.
pub fn ordered(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

impl PartialOrd for Wrapper {
    // Defining partial_cmp (delegating to the total Ord) is fine; calling
    // someone else's .partial_cmp(..) is what the rule bans.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

pub fn clamped(x: f64) -> f64 {
    // Method-form .max(..)/.min(..) are clamp idioms, left to oracle tests.
    let big = f64::MAX;
    x.max(0.0).min(big)
}

pub const DOC: &str = "f64::max, f64::min and partial_cmp in a string";
