// Known-good: every accepted safety-argument form.
pub fn read(p: *const u32) -> u32 {
    // SAFETY: callers pass a pointer into the arena, which outlives `read`.
    unsafe { *p }
}

pub fn read_trailing(p: *const u32) -> u32 {
    unsafe { *p } // SAFETY: same arena argument, trailing form.
}

/// Reads a raw slot.
///
/// # Safety
/// `p` must be valid for reads for the duration of the call.
pub unsafe fn raw_read(p: *const u32) -> u32 {
    *p
}

pub struct Cell(*const u32);

// SAFETY: the pointer is only ever read, and the arena it points into is
// immutable after construction.
unsafe impl Sync for Cell {}

pub const DOC: &str = "unsafe { } inside a string never fires";
