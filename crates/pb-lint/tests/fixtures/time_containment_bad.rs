// Known-bad: clock reads outside budget.rs with no annotation.
pub fn elapsed_ms() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis() as u64
}

pub fn wall_clock() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
