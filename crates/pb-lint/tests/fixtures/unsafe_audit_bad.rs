// Known-bad: unsafe sites with no written safety argument.
pub fn read(p: *const u32) -> u32 {
    unsafe { *p }
}

pub unsafe fn raw_read(p: *const u32) -> u32 {
    *p
}

pub struct Cell(*const u32);

unsafe impl Sync for Cell {}
