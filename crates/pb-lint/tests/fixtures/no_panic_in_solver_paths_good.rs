// Known-good: error propagation, the poison-idiom exemptions, a justified
// annotation, asserts, and mentions in comments/strings.
pub fn pick(xs: &[f64], lock: &std::sync::Mutex<u32>) -> Result<f64, String> {
    let first = xs.first().ok_or("empty view")?;
    // Poison-idiom exemption: poisoning only follows another thread's
    // panic, and re-raising is the correct containment.
    let guard = lock.lock().unwrap();
    drop(guard);
    // pb-lint: allow(no-panic-in-solver-paths) — invariant: len checked by
    // the ok_or above, so index 0 is present.
    let again = xs.get(0).unwrap();
    assert!(xs.len() < 1_000_000, "asserts are deliberate checks");
    // A .unwrap() in a comment never fires, nor does the string below.
    let doc = "panic!(boom) and .expect(msg) inside a string";
    drop(doc);
    Ok(*first + *again)
}
