// Known-bad: every hash-table iteration form the rule must catch.
use std::collections::{HashMap, HashSet};

pub fn total(prices: &HashMap<u64, f64>) -> f64 {
    let mut sum = 0.0;
    for (_, v) in prices {
        sum += v;
    }
    sum
}

pub fn first_key() -> Option<u64> {
    let m: HashMap<u64, u64> = HashMap::new();
    let first = m
        .keys()
        .min()
        .copied();
    first
}

pub fn drain_all(seen: &mut HashSet<u64>) -> Vec<u64> {
    seen.drain().collect()
}
