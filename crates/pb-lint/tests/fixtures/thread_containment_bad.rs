// Known-bad: thread creation outside the audited seams.
pub fn fan_out() -> i32 {
    let h = std::thread::spawn(|| 1 + 1);
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
    let b = std::thread::Builder::new();
    drop(b);
    h.join().unwrap_or(0)
}
