//! The self-hosting check: the real workspace is lint-clean.
//!
//! This is the same invariant CI enforces with
//! `cargo run -p pb-lint -- --deny-warnings`, expressed as a plain test so
//! `cargo test -q` alone catches a new violation (or a rotten allow
//! annotation) before anything reaches CI.

use std::path::PathBuf;

#[test]
fn the_workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let report = pb_lint::run_workspace(&root).expect("workspace walk succeeds");

    // Sanity: the walker actually saw the tree, not an empty directory.
    assert!(
        report.files > 50,
        "only {} files analyzed — walker miswired?",
        report.files
    );

    let rendered: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("[{}] {}:{}: {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "workspace has lint findings (errors or warnings):\n{}",
        rendered.join("\n")
    );

    let uncovered: Vec<String> = report
        .unsafe_sites
        .iter()
        .filter(|s| !s.has_safety)
        .map(|s| format!("{}:{} ({})", s.file, s.line, s.kind))
        .collect();
    assert!(
        uncovered.is_empty(),
        "unsafe sites without a SAFETY: comment:\n{}",
        uncovered.join("\n")
    );
}
