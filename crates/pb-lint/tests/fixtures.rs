//! Fixture-driven rule tests.
//!
//! Every rule has a known-bad snippet that must fire (with pinned lines, so
//! a matcher regression shows up as a moved finding, not just a changed
//! count) and a known-good snippet — keyed access, exemptions, annotations,
//! and rule-pattern mentions inside strings and comments — that must stay
//! completely silent. Fixtures live under `tests/fixtures/`; the workspace
//! walker skips that directory, and the snippets are analyzed as text, never
//! compiled.

use pb_lint::{analyze_source, FileClass};

/// Fixtures are analyzed as if they sat on a solver path — the strictest
/// class, which every rule applies to.
const REL: &str = "crates/core/src/fixture_under_test.rs";

/// Lines on which `rule` fired, plus a guard that nothing *else* fired
/// (`allow-hygiene` included) so fixtures stay single-purpose.
fn hits(src: &str, rule: &str) -> Vec<usize> {
    let findings = analyze_source(REL, FileClass::SolverPath, src);
    let stray: Vec<_> = findings.iter().filter(|f| f.rule != rule).collect();
    assert!(stray.is_empty(), "unexpected extra findings: {stray:?}");
    findings
        .into_iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

fn assert_silent(src: &str, rel: &str) {
    let findings = analyze_source(rel, FileClass::SolverPath, src);
    assert!(findings.is_empty(), "expected silence, got {findings:?}");
}

#[test]
fn no_hash_iteration_fires_on_every_form() {
    let lines = hits(
        include_str!("fixtures/no_hash_iteration_bad.rs"),
        "no-hash-iteration",
    );
    // `for … in`, a rustfmt-split `.keys()` chain, and `.drain()`.
    assert_eq!(lines, vec![6, 15, 22]);
}

#[test]
fn no_hash_iteration_spares_keyed_and_ordered_access() {
    assert_silent(include_str!("fixtures/no_hash_iteration_good.rs"), REL);
}

#[test]
fn no_nan_unsafe_ordering_fires_on_folds_and_partial_cmp() {
    let lines = hits(
        include_str!("fixtures/no_nan_unsafe_ordering_bad.rs"),
        "no-nan-unsafe-ordering",
    );
    assert_eq!(lines, vec![3, 7, 11]);
}

#[test]
fn no_nan_unsafe_ordering_spares_total_cmp_and_definitions() {
    assert_silent(include_str!("fixtures/no_nan_unsafe_ordering_good.rs"), REL);
}

#[test]
fn thread_containment_fires_outside_the_seams() {
    let lines = hits(
        include_str!("fixtures/thread_containment_bad.rs"),
        "thread-containment",
    );
    assert_eq!(lines, vec![3, 4, 7]);
}

#[test]
fn thread_containment_spares_parexec_users_and_the_homes() {
    assert_silent(include_str!("fixtures/thread_containment_good.rs"), REL);
    // The same bad snippet inside an audited seam is allowed wholesale.
    assert_silent(
        include_str!("fixtures/thread_containment_bad.rs"),
        "crates/core/src/par.rs",
    );
}

#[test]
fn time_containment_fires_on_unannotated_clock_reads() {
    let lines = hits(
        include_str!("fixtures/time_containment_bad.rs"),
        "time-containment",
    );
    assert_eq!(lines, vec![3, 8]);
}

#[test]
fn time_containment_spares_budget_rs_and_annotated_stats() {
    assert_silent(include_str!("fixtures/time_containment_good.rs"), REL);
    // budget.rs owns the authoritative clock; the rule skips it entirely.
    assert_silent(
        include_str!("fixtures/time_containment_bad.rs"),
        "crates/core/src/budget.rs",
    );
}

#[test]
fn unsafe_audit_fires_on_every_uncovered_site_kind() {
    let lines = hits(include_str!("fixtures/unsafe_audit_bad.rs"), "unsafe-audit");
    // block, fn, impl.
    assert_eq!(lines, vec![3, 6, 12]);
}

#[test]
fn unsafe_audit_accepts_every_safety_argument_form() {
    assert_silent(include_str!("fixtures/unsafe_audit_good.rs"), REL);
}

#[test]
fn no_panic_fires_on_unwrap_expect_and_macros() {
    let lines = hits(
        include_str!("fixtures/no_panic_in_solver_paths_bad.rs"),
        "no-panic-in-solver-paths",
    );
    assert_eq!(lines, vec![3, 4, 6, 9]);
}

#[test]
fn no_panic_spares_poison_idiom_annotations_and_asserts() {
    assert_silent(
        include_str!("fixtures/no_panic_in_solver_paths_good.rs"),
        REL,
    );
}

#[test]
fn solver_only_rules_skip_infra_files() {
    // The panic fixture fires on a solver path but not in infra code, where
    // panicking on corruption is legitimate.
    let findings = analyze_source(
        "crates/minidb/src/value.rs",
        FileClass::Infra,
        include_str!("fixtures/no_panic_in_solver_paths_bad.rs"),
    );
    assert!(
        findings
            .iter()
            .all(|f| f.rule != "no-panic-in-solver-paths"),
        "{findings:?}"
    );
}
