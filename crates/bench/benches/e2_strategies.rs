//! E2 — strategy crossover (paper §4, §5).
//!
//! Compares the evaluation strategies (pruned enumeration, ILP, local search)
//! on the meal-plan query as the relation grows, reproducing the claim that
//! "each of the evaluation techniques ... have different strengths and
//! weaknesses".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packagebuilder::config::Strategy;
use pb_bench::{recipe_engine, run, MEAL_PLAN_QUERY};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_strategies");
    group.sample_size(10);
    for &n in &[50usize, 200, 800] {
        for (label, strategy) in [
            ("ilp", Strategy::Ilp),
            ("local_search", Strategy::LocalSearch),
        ] {
            let engine = recipe_engine(n, strategy);
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| black_box(run(&engine, MEAL_PLAN_QUERY).best_objective()))
            });
        }
        // Enumeration only at sizes where it terminates in reasonable time.
        if n <= 50 {
            let engine = recipe_engine(n, Strategy::PrunedEnumeration);
            group.bench_with_input(BenchmarkId::new("pruned_enumeration", n), &n, |b, _| {
                b.iter(|| black_box(run(&engine, MEAL_PLAN_QUERY).best_objective()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
