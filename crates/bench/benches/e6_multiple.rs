//! E6 — multiple and diverse package results (paper §5).
//!
//! Measures the cost of retrieving p packages by re-solving with no-good
//! cuts (the paper's "retrieving more packages requires modifying and
//! re-evaluating the query") and the max-min diverse selection over a pool of
//! enumerated packages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lp_solver::SolverConfig;
use packagebuilder::budget::Budget;
use packagebuilder::diversity::select_diverse;
use packagebuilder::enumerate::{enumerate, EnumerationOptions};
use packagebuilder::ilp::solve_ilp;
use packagebuilder::package::Package;
use packagebuilder::spec::PackageSpec;
use pb_bench::recipe_table;
use std::hint::black_box;

const QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1500 MAXIMIZE SUM(P.protein)";

fn bench_multiple(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_multiple");
    group.sample_size(10);

    let table = recipe_table(200);
    let analyzed = paql::compile(QUERY, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();

    for &p in &[1usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::new("ilp_with_cuts", p), &p, |b, &p| {
            b.iter(|| {
                black_box(
                    solve_ilp(
                        spec.view(),
                        &SolverConfig::default(),
                        p,
                        &Budget::unlimited(),
                    )
                    .unwrap()
                    .packages
                    .len(),
                )
            })
        });
    }

    // Diverse selection over an enumerated pool (small relation keeps the
    // pool generation cheap; the measured part is the selection).
    let small = recipe_table(18);
    let analyzed = paql::compile(QUERY, small.schema()).unwrap();
    let small_spec = PackageSpec::build(&analyzed, &small).unwrap();
    let pool: Vec<Package> = enumerate(
        small_spec.view(),
        EnumerationOptions {
            keep: 5_000,
            ..Default::default()
        },
    )
    .unwrap()
    .packages
    .into_iter()
    .map(|(p, _)| p)
    .collect();
    for &k in &[5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("select_diverse", k), &k, |b, &k| {
            b.iter(|| black_box(select_diverse(&pool, k).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multiple);
criterion_main!(benches);
