//! E1 — cardinality-based pruning (paper §4.1).
//!
//! Measures enumeration with and without pruning on the meal-plan query as
//! the candidate count grows, reproducing the claim that pruning shrinks the
//! search space from `2^n` to `Σ_k C(n,k)` without losing solutions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packagebuilder::enumerate::{enumerate, EnumerationOptions};
use packagebuilder::spec::PackageSpec;
use pb_bench::{recipe_table, MEAL_PLAN_QUERY_NO_FILTER};
use std::hint::black_box;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_pruning");
    group.sample_size(10);
    for &n in &[12usize, 16, 20] {
        let table = recipe_table(n);
        let analyzed = paql::compile(MEAL_PLAN_QUERY_NO_FILTER, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    enumerate(
                        spec.view(),
                        EnumerationOptions {
                            prune: false,
                            keep: 1,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                    .nodes,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("pruned", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    enumerate(
                        spec.view(),
                        EnumerationOptions {
                            prune: true,
                            keep: 1,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                    .nodes,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
