//! E5 — interface backends (paper §3.1–§3.2, Figure 1).
//!
//! Measures the computations behind the interactive features: constraint
//! suggestion from a highlight, natural-language rendering of the query, and
//! the 2-D package-space summary, at interactive result-set sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minidb::TupleId;
use packagebuilder::package::Package;
use packagebuilder::spec::PackageSpec;
use packagebuilder::suggest::{suggest, Highlight};
use packagebuilder::summary::summarize;
use pb_bench::{recipe_table, MEAL_PLAN_QUERY};
use std::hint::black_box;

fn bench_interface(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_interface");
    group.sample_size(20);

    for &n in &[1_000usize, 10_000, 50_000] {
        let table = recipe_table(n);
        group.bench_with_input(BenchmarkId::new("suggest_cell", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    suggest(
                        &table,
                        "P",
                        &Highlight::Cell {
                            tuple: TupleId(0),
                            column: "fat".into(),
                        },
                    )
                    .unwrap()
                    .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("suggest_column", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    suggest(
                        &table,
                        "P",
                        &Highlight::Column {
                            column: "calories".into(),
                        },
                    )
                    .unwrap()
                    .len(),
                )
            })
        });
    }

    // Natural-language description is independent of relation size.
    let query = paql::parse(MEAL_PLAN_QUERY).unwrap();
    group.bench_function("describe_query", |b| {
        b.iter(|| black_box(paql::pretty::describe_query(&query).len()))
    });

    // 2-D summary over m candidate packages.
    let table = recipe_table(2_000);
    let analyzed = paql::compile(MEAL_PLAN_QUERY, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();
    for &m in &[100usize, 1_000, 10_000] {
        let packages: Vec<Package> = (0..m)
            .map(|i| {
                Package::from_ids(
                    spec.candidates
                        .iter()
                        .copied()
                        .cycle()
                        .skip(i % spec.candidates.len())
                        .take(3),
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("summarize", m), &m, |b, _| {
            b.iter(|| black_box(summarize(&spec, &packages, Some(0)).unwrap().glyphs.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interface);
criterion_main!(benches);
