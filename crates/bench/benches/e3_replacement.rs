//! E3 — the k-tuple replacement neighbourhood (paper §4.2).
//!
//! Measures (a) the single-tuple replacement relational query (a selection
//! over a Cartesian product, exactly the paper's SQL query) as the relation
//! grows, and (b) local search with k = 1 vs k = 2, reproducing the claim
//! that the 2k-way join "quickly becomes intractable".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packagebuilder::local_search::{local_search, single_replacement_query, LocalSearchOptions};
use packagebuilder::package::Package;
use packagebuilder::spec::PackageSpec;
use pb_bench::{recipe_table, MEAL_PLAN_QUERY_NO_FILTER};
use std::hint::black_box;

fn bench_replacement(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_replacement");
    group.sample_size(10);
    for &n in &[100usize, 400, 1600] {
        let table = recipe_table(n);
        let analyzed = paql::compile(MEAL_PLAN_QUERY_NO_FILTER, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        // Pick the three recipes closest to 900 kcal: the package lands a few
        // hundred calories over the 2,500 budget, so single-tuple repairs exist
        // (mirroring the paper's 3,000-calorie example).
        let mut by_cal = spec.candidates.clone();
        by_cal.sort_by(|a, b| {
            let da = (table.value_f64(*a, "calories").unwrap() - 900.0).abs();
            let db = (table.value_f64(*b, "calories").unwrap() - 900.0).abs();
            da.total_cmp(&db)
        });
        let package = Package::from_ids(by_cal.iter().copied().take(3));
        let total: f64 = package
            .members()
            .map(|(id, m)| table.value_f64(id, "calories").unwrap() * m as f64)
            .sum();
        group.bench_with_input(
            BenchmarkId::new("single_replacement_query", n),
            &n,
            |b, _| {
                b.iter(|| {
                    black_box(
                        single_replacement_query(
                            &table,
                            &package,
                            &spec.candidates,
                            "calories",
                            total,
                            2500.0,
                        )
                        .unwrap()
                        .len(),
                    )
                })
            },
        );
    }
    // Local search k = 1 vs k = 2 at a fixed size.
    let table = recipe_table(200);
    let analyzed = paql::compile(MEAL_PLAN_QUERY_NO_FILTER, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();
    for k in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("local_search_k", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    local_search(
                        spec.view(),
                        &LocalSearchOptions {
                            k,
                            restarts: 2,
                            max_moves: 200,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                    .evaluations,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replacement);
criterion_main!(benches);
