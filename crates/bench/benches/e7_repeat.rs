//! E7 — REPEAT (multiset) semantics (paper §2).
//!
//! Measures the ILP strategy as the REPEAT bound grows, and checks the cost
//! of multiset enumeration on small inputs. The objective is monotone in the
//! REPEAT bound (verified by the harness), since every package valid under
//! `REPEAT k` is valid under `REPEAT k+1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packagebuilder::config::Strategy;
use packagebuilder::enumerate::{enumerate, EnumerationOptions};
use packagebuilder::spec::PackageSpec;
use pb_bench::{recipe_engine, recipe_table, run};
use std::hint::black_box;

fn repeat_query(k: u32) -> String {
    format!(
        "SELECT PACKAGE(R) AS P FROM recipes R REPEAT {k} \
         SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
         MAXIMIZE SUM(P.protein)"
    )
}

fn bench_repeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_repeat");
    group.sample_size(10);

    let engine = recipe_engine(300, Strategy::Ilp);
    for &k in &[1u32, 2, 3, 4] {
        let q = repeat_query(k);
        group.bench_with_input(BenchmarkId::new("ilp_repeat", k), &k, |b, _| {
            b.iter(|| black_box(run(&engine, &q).best_objective()))
        });
    }

    // Multiset enumeration: the unpruned space is (k+1)^n, so keep n tiny.
    let table = recipe_table(10);
    for &k in &[1u32, 2, 3] {
        let q = repeat_query(k);
        let analyzed = paql::compile(&q, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        group.bench_with_input(BenchmarkId::new("enumeration_repeat", k), &k, |b, _| {
            b.iter(|| {
                black_box(
                    enumerate(spec.view(), EnumerationOptions::default())
                        .unwrap()
                        .nodes,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repeat);
criterion_main!(benches);
