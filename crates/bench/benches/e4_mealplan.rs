//! E4 — the meal-plan query end to end (paper §2, §7).
//!
//! Measures the full pipeline (parse → analyze → base constraints → ILP
//! translation → branch and bound) and the ILP translation step alone, on the
//! demo's running example.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packagebuilder::config::Strategy;
use packagebuilder::ilp::translate;
use packagebuilder::spec::PackageSpec;
use pb_bench::{recipe_engine, recipe_table, run, MEAL_PLAN_QUERY};
use std::hint::black_box;

fn bench_mealplan(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_mealplan");
    group.sample_size(10);
    for &n in &[100usize, 500, 2000] {
        let engine = recipe_engine(n, Strategy::Ilp);
        group.bench_with_input(BenchmarkId::new("end_to_end_ilp", n), &n, |b, _| {
            b.iter(|| black_box(run(&engine, MEAL_PLAN_QUERY).best_objective()))
        });

        let table = recipe_table(n);
        let analyzed = paql::compile(MEAL_PLAN_QUERY, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        group.bench_with_input(BenchmarkId::new("ilp_translation_only", n), &n, |b, _| {
            b.iter(|| black_box(translate(spec.view()).unwrap().problem.num_constraints()))
        });
        group.bench_with_input(BenchmarkId::new("parse_and_analyze", n), &n, |b, _| {
            b.iter(|| black_box(paql::compile(MEAL_PLAN_QUERY, table.schema()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mealplan);
criterion_main!(benches);
