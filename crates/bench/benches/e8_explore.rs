//! E8 — adaptive exploration (paper §3.3).
//!
//! Measures one refinement round (lock a tuple, re-sample the rest) of an
//! exploration session, which must stay at interactive latency, and the cost
//! of inferring constraints from the locked tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use packagebuilder::config::Strategy;
use packagebuilder::explore::ExplorationSession;
use pb_bench::{recipe_engine, MEAL_PLAN_QUERY};
use std::hint::black_box;

fn bench_explore(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_explore");
    group.sample_size(10);
    for &n in &[500usize, 5_000] {
        let engine = recipe_engine(n, Strategy::Ilp);
        let query = paql::parse(MEAL_PLAN_QUERY).unwrap();

        group.bench_with_input(BenchmarkId::new("refine_round", n), &n, |b, _| {
            // Setup outside the timed closure: draw an initial sample and
            // lock one tuple of it.
            let mut session = ExplorationSession::new(query.clone());
            session.sample(&engine).unwrap();
            let keep = session.current().unwrap().tuple_ids()[0];
            session.lock(keep).unwrap();
            b.iter(|| black_box(session.refine(&engine).unwrap().len()))
        });

        group.bench_with_input(BenchmarkId::new("inferred_constraints", n), &n, |b, _| {
            let mut session = ExplorationSession::new(query.clone());
            session.sample(&engine).unwrap();
            for t in session.current().unwrap().tuple_ids() {
                session.lock(t).unwrap();
            }
            b.iter(|| black_box(session.inferred_constraints(&engine).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explore);
criterion_main!(benches);
