//! Shared workload definitions for the experiment benches and the `harness`
//! binary. Every experiment in `EXPERIMENTS.md` builds its inputs through
//! this crate so the Criterion benches and the table-printing harness measure
//! exactly the same configurations.

use datagen::{recipes, Seed};
use minidb::{Catalog, Table};
use packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder::{PackageEngine, PackageResult, PbResult};

/// The paper's running example (Section 2): the athlete's daily meal plan.
pub const MEAL_PLAN_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    WHERE R.gluten = 'free' \
    SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
    MAXIMIZE SUM(P.protein)";

/// A meal-plan variant without the gluten filter, used where the experiments
/// need the candidate count to equal the relation size exactly.
pub const MEAL_PLAN_QUERY_NO_FILTER: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
    MAXIMIZE SUM(P.protein)";

/// Default seed for all experiment workloads.
pub const BENCH_SEED: u64 = 20140901; // VLDB 2014

/// Builds an engine over a recipes table of `n` rows.
pub fn recipe_engine(n: usize, strategy: Strategy) -> PackageEngine {
    let mut catalog = Catalog::new();
    catalog.register(recipes(n, Seed(BENCH_SEED)));
    PackageEngine::with_config(
        catalog,
        EngineConfig::with_strategy(strategy).with_seed(BENCH_SEED),
    )
}

/// Builds just the recipes table of `n` rows (for spec-level experiments).
pub fn recipe_table(n: usize) -> Table {
    recipes(n, Seed(BENCH_SEED))
}

/// Engine configuration for one gauntlet cell: fixed seed, a pinned
/// portfolio worker set, and **deterministic truncation only** — node and
/// move caps, never wall-clock budgets — so a truncated cell is still a
/// pure function of its inputs and the cross-thread identity gate stays
/// meaningful even where the full solve would be intractable.
pub fn gauntlet_config(strategy: Strategy, threads: usize) -> EngineConfig {
    // `with_num_threads(1)` first pins the portfolio worker set to the
    // sequential default; assigning `num_threads` afterwards then varies
    // only the execution fan-out, never the raced strategy mix.
    let mut config = EngineConfig::with_strategy(strategy)
        .with_seed(BENCH_SEED)
        .with_num_threads(1);
    config.num_threads = threads;
    config.max_enumeration_nodes = 200_000;
    // One restart and a short move budget: the standalone local-search cell
    // is informational (never gated), and a move's neighbourhood scan costs
    // O(package members × candidates) — the high-cardinality `bulk` family
    // (1 000-member packages) turns a generous move budget into minutes per
    // cell without changing any verdict.
    config.max_local_moves = 150;
    config.local_restarts = 1;
    config
}

/// Builds a gauntlet engine over an already-built scenario table.
pub fn gauntlet_engine(table: Table, strategy: Strategy, threads: usize) -> PackageEngine {
    let mut catalog = Catalog::new();
    catalog.register(table);
    PackageEngine::with_config(catalog, gauntlet_config(strategy, threads))
}

/// Runs a query on an engine and panics with context on error — benches want
/// loud failures, not silently skipped measurements.
pub fn run(engine: &PackageEngine, query: &str) -> PackageResult {
    match engine.execute_paql(query) {
        Ok(r) => r,
        Err(e) => panic!("benchmark query failed: {e}\nquery: {query}"),
    }
}

/// Runs a query, returning the error instead of panicking (used by harness
/// rows that probe intractable configurations).
pub fn try_run(engine: &PackageEngine, query: &str) -> PbResult<PackageResult> {
    engine.execute_paql(query)
}

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`), or 0
/// where the proc interface is unavailable. Monotone over the process
/// lifetime — record it at the end of an experiment to bound that
/// experiment's memory footprint from above.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The resource fields every `BENCH_*.json` records: the process's peak RSS
/// plus the cumulative buffer-pool counters of the out-of-core column store
/// (all zero for a run whose views stayed resident). Rendered as top-level
/// JSON members, ready to splice between `"query"` and `"rows"`.
pub fn resource_json() -> String {
    let pool = packagebuilder::pool_stats();
    format!(
        "  \"peak_rss_bytes\": {},\n  \"pool\": {{\"hits\": {}, \"misses\": {}, \
         \"evictions\": {}, \"pages_spilled\": {}}},",
        peak_rss_bytes(),
        pool.hits,
        pool.misses,
        pool.evictions,
        pool.pages_spilled
    )
}

/// Prints a fixed-width table row for the harness output.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect();
    println!("| {} |", line.join(" | "));
}

/// Prints a table header and separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_run_the_meal_plan_query() {
        let engine = recipe_engine(120, Strategy::Auto);
        let r = run(&engine, MEAL_PLAN_QUERY);
        assert!(!r.is_empty());
    }

    #[test]
    fn ms_formats_three_decimals() {
        assert_eq!(ms(std::time::Duration::from_millis(1500)), "1500.000");
    }
}
