//! The experiment harness: runs every experiment of `EXPERIMENTS.md` at a
//! laptop-friendly scale and prints one markdown table per experiment.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pb-bench --bin harness            # all experiments
//! cargo run --release -p pb-bench --bin harness -- e1 e3   # a subset
//! ```
//!
//! Besides `e1`–`e8`, the named modes `eval`, `portfolio`, `sketch`,
//! `cache`, `parallel`, `bnb`, `paged` and `shade` run the PR-baseline
//! experiments and write the corresponding `BENCH_*.json` files. The `gauntlet` mode
//! (or `gauntlet-smoke` for the smallest-size-only CI leg) runs the
//! scenario-registry workload gauntlet and exits nonzero when a validity,
//! cross-thread determinism or objective-gap gate fails.

use std::time::Instant;

use lp_solver::SolverConfig;
use minidb::TupleId;
use packagebuilder::budget::Budget;
use packagebuilder::config::Strategy;
use packagebuilder::diversity::{diversity_score, select_diverse};
use packagebuilder::enumerate::{enumerate, EnumerationOptions};
use packagebuilder::explore::ExplorationSession;
use packagebuilder::ilp::solve_ilp;
use packagebuilder::local_search::{local_search, single_replacement_query, LocalSearchOptions};
use packagebuilder::package::Package;
use packagebuilder::pruning::{derive_bounds, search_space};
use packagebuilder::spec::PackageSpec;
use packagebuilder::suggest::{suggest, Highlight};
use packagebuilder::summary::summarize;
use pb_bench::{
    ms, print_header, print_row, recipe_engine, recipe_table, resource_json, run, MEAL_PLAN_QUERY,
    MEAL_PLAN_QUERY_NO_FILTER,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("PackageBuilder reproduction — experiment harness");
    println!(
        "(one markdown table per experiment; see EXPERIMENTS.md for the claim each row checks)\n"
    );

    if want("e1") {
        e1_pruning();
    }
    if want("e2") {
        e2_strategies();
    }
    if want("e3") {
        e3_replacement();
    }
    if want("e4") {
        e4_mealplan();
    }
    if want("e5") {
        e5_interface();
    }
    if want("e6") {
        e6_multiple();
    }
    if want("e7") {
        e7_repeat();
    }
    if want("e8") {
        e8_explore();
    }
    if want("eval") {
        eval_throughput();
    }
    if want("portfolio") {
        portfolio_racing();
    }
    if want("sketch") {
        sketch_refine_scaling();
    }
    if want("cache") && !cache_reuse() {
        // Bit-identity of cache hits is deterministic (unlike the timing
        // verdicts), so a mismatch is a real regression and must fail CI.
        eprintln!("CACHE experiment: warm cache-hit results differ from cold results");
        std::process::exit(1);
    }
    if want("parallel") && !parallel_scaling() {
        // Chunk-order reductions make thread count result-invariant by
        // construction; a mismatch is a real determinism regression.
        eprintln!("PARALLEL experiment: parallel and sequential packages differ");
        std::process::exit(1);
    }
    if want("bnb") && !bnb_exact_core() {
        // Parallel branch and bound merges frontier batches in a fixed
        // order; a thread-dependent solution (or even a drifting node or
        // iteration counter) is a real determinism regression.
        eprintln!(
            "BNB experiment: multi-thread exact solutions differ from the 1-thread reference"
        );
        std::process::exit(1);
    }
    if want("paged") && !paged_out_of_core() {
        // Column storage mode is invisible to every consumer by contract;
        // a paged run that differs from its resident reference (packages,
        // objectives, or even the evaluation counters) is a real
        // out-of-core correctness regression.
        eprintln!("PAGED experiment: out-of-core results differ from the resident reference");
        std::process::exit(1);
    }
    if want("shade") && !shade_scaling() {
        // Both shade gates are deterministic: cross-thread fingerprints are
        // bit-identical by the chunk-order contract, and the greedy floor is
        // structural to the solver — either miss is a real regression.
        eprintln!("SHADE experiment: a cross-thread fingerprint or greedy-floor gate failed");
        std::process::exit(1);
    }
    // `gauntlet` sweeps the full size grid; `gauntlet-smoke` (and the
    // no-argument run) keeps each family at its smallest size so default
    // and CI runs stay minutes, not hours.
    let gauntlet_smoke = args.iter().any(|a| a == "gauntlet-smoke");
    if (want("gauntlet") || gauntlet_smoke) && !gauntlet(gauntlet_smoke || args.is_empty()) {
        eprintln!(
            "GAUNTLET experiment: a validity, cross-thread identity or objective-gap gate failed"
        );
        std::process::exit(1);
    }
}

/// Runs `f` repeatedly until ~0.2 s has elapsed and returns calls/second.
fn rate(mut f: impl FnMut() -> usize) -> f64 {
    let budget = std::time::Duration::from_millis(200);
    let start = Instant::now();
    let mut calls = 0usize;
    while start.elapsed() < budget {
        calls += f();
    }
    calls as f64 / start.elapsed().as_secs_f64()
}

/// EVAL — package-evaluation throughput: the columnar `CandidateView` path
/// (full projection and delta moves) against the interpreted expression-tree
/// oracle. Writes `BENCH_eval.json` next to the working directory so future
/// PRs have a machine-readable baseline.
fn eval_throughput() {
    println!("## EVAL — objective/violation evaluation throughput (columnar vs interpreted)\n");
    let widths = [8, 30, 16, 18];
    print_header(&["n", "path", "evals/sec", "vs interpreted"], &widths);
    let mut json_rows: Vec<String> = Vec::new();
    for n in [500usize, 2_000, 8_000] {
        let table = recipe_table(n);
        let analyzed = paql::compile(MEAL_PLAN_QUERY_NO_FILTER, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        let formula = spec.formula.clone().expect("meal query has a formula");
        let objective = spec.objective.clone().expect("meal query has an objective");
        let packages: Vec<Package> = (0..64)
            .map(|i| {
                Package::from_ids(
                    spec.candidates
                        .iter()
                        .copied()
                        .cycle()
                        .skip((i * 3) % spec.candidate_count())
                        .take(3),
                )
            })
            .collect();

        let interpreted = rate(|| {
            for p in &packages {
                let v = p.formula_violation(&table, &formula).unwrap();
                let o = p.objective_value(&table, &objective).unwrap();
                std::hint::black_box((v, o));
            }
            packages.len()
        });
        let columnar = rate(|| {
            for p in &packages {
                let v = spec.violation(p).unwrap();
                let o = spec.objective_value(p).unwrap();
                std::hint::black_box((v, o));
            }
            packages.len()
        });
        let state = spec.view().project(&packages[0]).unwrap();
        let member = *state.member_indices().collect::<Vec<_>>().first().unwrap();
        let swaps: Vec<[(usize, i64); 2]> = (0..spec.candidate_count().min(256))
            .map(|inn| [(member, -1i64), (inn, 1i64)])
            .collect();
        let delta = rate(|| {
            for changes in &swaps {
                std::hint::black_box(state.score_with(changes));
            }
            swaps.len()
        });

        for (label, value) in [
            ("interpreted (oracle)", interpreted),
            ("columnar projection", columnar),
            ("columnar delta (swap)", delta),
        ] {
            print_row(
                &[
                    n.to_string(),
                    label.into(),
                    format!("{value:.0}"),
                    format!("{:.1}x", value / interpreted),
                ],
                &widths,
            );
        }
        json_rows.push(format!(
            "    {{\"n\": {n}, \"interpreted_evals_per_sec\": {interpreted:.1}, \
             \"columnar_evals_per_sec\": {columnar:.1}, \"delta_evals_per_sec\": {delta:.1}}}"
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"eval_throughput\",\n  \"query\": \"meal_plan\",\n{}\n  \"rows\": [\n{}\n  ]\n}}\n",
        resource_json(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_eval.json", &json) {
        Ok(()) => println!("\n(wrote BENCH_eval.json)\n"),
        Err(e) => println!("\n(could not write BENCH_eval.json: {e})\n"),
    }
}

/// PORTFOLIO — racing solve vs the sequential strategies on the meal-plan
/// scenario, at the sizes where the planner actually deploys the portfolio
/// (thousands of candidates; below `portfolio_threshold` the race cannot
/// beat a ~1 ms sequential ILP, especially time-shared on a single core).
/// The sequential strategies run to completion; the portfolio runs as the
/// interface layer would use it — under a deadline. Racing ILP, local
/// search and greedy over one view, the first provably-optimal finish
/// cancels the rest and the deadline caps everyone else, so the race
/// returns a package no worse than greedy alone while beating the slowest
/// sequential strategy's wall-clock. Writes `BENCH_portfolio.json` as the
/// machine-readable baseline for future PRs.
fn portfolio_racing() {
    const RACE_BUDGET: std::time::Duration = std::time::Duration::from_millis(25);
    println!(
        "## PORTFOLIO — racing solve (deadline {} ms) vs sequential strategies (meal plan)\n",
        RACE_BUDGET.as_millis()
    );
    let widths = [6, 16, 12, 14, 10];
    print_header(
        &["n", "strategy", "time (ms)", "objective", "optimal?"],
        &widths,
    );
    let mut json_rows: Vec<String> = Vec::new();
    for n in [2_000usize, 8_000, 20_000] {
        let mut rows: Vec<(&str, std::time::Duration, Option<f64>, bool)> = Vec::new();
        for (label, strategy) in [
            ("ilp", Strategy::Ilp),
            ("local-search", Strategy::LocalSearch),
            ("greedy", Strategy::Greedy),
            ("portfolio", Strategy::Portfolio),
        ] {
            let mut engine = recipe_engine(n, strategy);
            if strategy == Strategy::Portfolio {
                engine.config_mut().time_budget = Some(RACE_BUDGET);
                engine.config_mut().solver.time_limit = Some(RACE_BUDGET);
            }
            let t0 = Instant::now();
            let r = run(&engine, MEAL_PLAN_QUERY);
            rows.push((label, t0.elapsed(), r.best_objective(), r.optimal));
        }
        // Verdict inputs looked up by label, so reordering or extending the
        // strategy list above cannot silently skew the recorded baseline.
        let by_label = |l: &str| {
            rows.iter()
                .find(|(label, ..)| *label == l)
                .unwrap_or_else(|| panic!("missing {l} row"))
        };
        let slowest_sequential = rows
            .iter()
            .filter(|(label, ..)| *label != "portfolio")
            .map(|(_, t, _, _)| *t)
            .max()
            .expect("sequential rows");
        let greedy_objective = by_label("greedy").2;
        let (_, portfolio_time, portfolio_objective, _) = *by_label("portfolio");
        for (label, time, obj, optimal) in &rows {
            print_row(
                &[
                    n.to_string(),
                    (*label).into(),
                    ms(*time),
                    obj.map(|o| format!("{o:.1}")).unwrap_or_else(|| "-".into()),
                    if *optimal { "yes".into() } else { "no".into() },
                ],
                &widths,
            );
            json_rows.push(format!(
                "    {{\"n\": {n}, \"strategy\": \"{label}\", \"ms\": {:.3}, \
                 \"objective\": {}, \"optimal\": {optimal}}}",
                time.as_secs_f64() * 1e3,
                obj.map(|o| format!("{o:.3}"))
                    .unwrap_or_else(|| "null".into()),
            ));
        }
        let beats_slowest = portfolio_time < slowest_sequential;
        let no_worse_than_greedy = match (portfolio_objective, greedy_objective) {
            (Some(p), Some(g)) => p + 1e-9 >= g,
            (_, None) => true,
            (None, Some(_)) => false,
        };
        print_row(
            &[
                n.to_string(),
                "verdict".into(),
                format!(
                    "{:.1}x",
                    slowest_sequential.as_secs_f64() / portfolio_time.as_secs_f64().max(1e-9)
                ),
                if no_worse_than_greedy {
                    ">= greedy".into()
                } else {
                    "< greedy (!)".into()
                },
                if beats_slowest {
                    "faster".into()
                } else {
                    "SLOWER".into()
                },
            ],
            &widths,
        );
    }
    let json = format!(
        "{{\n  \"experiment\": \"portfolio_racing\",\n  \"query\": \"meal_plan\",\n{}\n  \"rows\": [\n{}\n  ]\n}}\n",
        resource_json(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_portfolio.json", &json) {
        Ok(()) => println!("\n(wrote BENCH_portfolio.json)\n"),
        Err(e) => println!("\n(could not write BENCH_portfolio.json: {e})\n"),
    }
}

/// SKETCH — partition→sketch→refine vs the monolithic ILP and the 25 ms
/// portfolio race on the meal-plan scenario. The claim under test (from
/// SketchRefine, PVLDB 2016): near-optimal objectives at a small fraction of
/// the monolithic ILP's latency, and strictly better objectives than a
/// deadline-bound race once the race can no longer finish the exact solve
/// (n ≥ 8000 on this host). The sequential ILP is run to completion up to
/// n = 20 000 as the optimality/latency baseline; at n = 50 000 it would take
/// minutes, so only sketch→refine and the race are measured there. Writes
/// `BENCH_sketch.json` as the machine-readable baseline for future PRs.
fn sketch_refine_scaling() {
    const RACE_BUDGET: std::time::Duration = std::time::Duration::from_millis(25);
    println!("## SKETCH — sketch→refine vs sequential ILP and the 25 ms portfolio (meal plan)\n");
    let widths = [6, 16, 12, 14, 10];
    print_header(
        &["n", "strategy", "time (ms)", "objective", "optimal?"],
        &widths,
    );
    let mut json_rows: Vec<String> = Vec::new();
    for n in [2_000usize, 8_000, 20_000, 50_000] {
        let mut rows: Vec<(&str, std::time::Duration, Option<f64>, bool)> = Vec::new();
        // `race-trio` is PR 2's worker set (ilp/local-search/greedy) — the
        // deadline race as it existed before sketch→refine joined it; the
        // `portfolio` row is today's default race, which includes
        // sketch→refine as a fourth worker and therefore inherits its
        // quality.
        for (label, strategy) in [
            ("ilp", Strategy::Ilp),
            ("race-trio", Strategy::Portfolio),
            ("portfolio", Strategy::Portfolio),
            ("sketch-refine", Strategy::SketchRefine),
        ] {
            if label == "ilp" && n > 20_000 {
                continue; // minutes of wall-clock for one baseline row
            }
            let mut engine = recipe_engine(n, strategy);
            if strategy == Strategy::Portfolio {
                engine.config_mut().time_budget = Some(RACE_BUDGET);
                engine.config_mut().solver.time_limit = Some(RACE_BUDGET);
                if label == "race-trio" {
                    engine.config_mut().portfolio_workers =
                        vec![Strategy::Ilp, Strategy::LocalSearch, Strategy::Greedy];
                }
            }
            let t0 = Instant::now();
            let r = run(&engine, MEAL_PLAN_QUERY);
            rows.push((label, t0.elapsed(), r.best_objective(), r.optimal));
        }
        // Verdict inputs looked up by label (same convention as the
        // portfolio experiment), so reordering or extending the strategy
        // list cannot silently skew the recorded baseline. Only the ilp row
        // is legitimately absent (skipped past n = 20,000).
        let by_label = |l: &str| rows.iter().find(|(label, ..)| *label == l);
        for (label, time, obj, optimal) in &rows {
            print_row(
                &[
                    n.to_string(),
                    (*label).into(),
                    ms(*time),
                    obj.map(|o| format!("{o:.1}")).unwrap_or_else(|| "-".into()),
                    if *optimal { "yes".into() } else { "no".into() },
                ],
                &widths,
            );
            json_rows.push(format!(
                "    {{\"n\": {n}, \"strategy\": \"{label}\", \"ms\": {:.3}, \
                 \"objective\": {}, \"optimal\": {optimal}}}",
                time.as_secs_f64() * 1e3,
                obj.map(|o| format!("{o:.3}"))
                    .unwrap_or_else(|| "null".into()),
            ));
        }
        let (_, sketch_time, sketch_obj, _) =
            *by_label("sketch-refine").expect("sketch row always runs");
        let (_, _, race_obj, _) = *by_label("race-trio").expect("race row always runs");
        let mut verdict = vec![n.to_string(), "verdict".into()];
        match by_label("ilp") {
            Some(&(_, ilp_time, ilp_obj, _)) => {
                let quality = match (sketch_obj, ilp_obj) {
                    (Some(s), Some(o)) if o > 0.0 => format!("{:.1}% of opt", 100.0 * s / o),
                    _ => "-".into(),
                };
                verdict.push(format!(
                    "{:.1}% of ilp",
                    100.0 * sketch_time.as_secs_f64() / ilp_time.as_secs_f64().max(1e-9)
                ));
                verdict.push(quality);
            }
            None => {
                verdict.push("-".into());
                verdict.push("(no ilp run)".into());
            }
        }
        let beats_race = match (sketch_obj, race_obj) {
            (Some(s), Some(p)) => s > p + 1e-9,
            (Some(_), None) => true,
            _ => false,
        };
        verdict.push(if beats_race {
            "> race".into()
        } else {
            "<= race".into()
        });
        print_row(&verdict, &widths);
    }
    let json = format!(
        "{{\n  \"experiment\": \"sketch_refine_scaling\",\n  \"query\": \"meal_plan\",\n{}\n  \"rows\": [\n{}\n  ]\n}}\n",
        resource_json(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_sketch.json", &json) {
        Ok(()) => println!("\n(wrote BENCH_sketch.json)\n"),
        Err(e) => println!("\n(could not write BENCH_sketch.json: {e})\n"),
    }
}

/// CACHE — the cross-query view & partition cache on a repeated query. The
/// claim under test: real workloads re-solve the same relation + base
/// predicate with varying constraints, and the engine's `ViewCache` makes
/// every solve after the first skip candidate evaluation, column
/// materialization, statistics *and* (on the sketch path) the k-d
/// partitioning — leaving pure solver time. Each n runs the meal-plan query
/// three times on one engine: `cold` (miss, builds and banks everything),
/// `warm`/`warm2` (hits). The verdict checks the warm pass is strictly
/// faster and the answers are bit-identical — cached building blocks must
/// never change results. Writes `BENCH_cache.json` as the machine-readable
/// baseline for future PRs. Returns false when any warm result differs from
/// its cold result, so the caller can fail the process (the CI gate).
fn cache_reuse() -> bool {
    let mut all_identical = true;
    println!("## CACHE — repeated-query view & partition cache (meal plan)\n");
    let widths = [6, 8, 12, 12, 14, 14];
    print_header(
        &[
            "n",
            "pass",
            "build (ms)",
            "solve (ms)",
            "objective",
            "cache h/m",
        ],
        &widths,
    );
    let mut json_rows: Vec<String> = Vec::new();
    // Both sizes leave the meal query's gluten-free candidate set (~42% of
    // n) at or above `sketch_threshold`, so Auto races the portfolio whose
    // sketch→refine worker runs — the offline partitioning it needs is part
    // of what the cache amortizes.
    // Smaller inputs fall to the monolithic ILP, whose solve time dwarfs
    // view construction — caching is latency-neutral there by design.
    for n in [12_000usize, 20_000] {
        let engine = recipe_engine(n, Strategy::Auto);
        let query = paql::parse(MEAL_PLAN_QUERY).unwrap();
        // (pass, build ms, solve ms, objective, best package).
        type Pass<'a> = (&'a str, f64, f64, Option<f64>, Option<Package>);
        let mut passes: Vec<Pass> = Vec::new();
        for pass in ["cold", "warm", "warm2"] {
            let t0 = Instant::now();
            let spec = engine.build_spec(&query).unwrap();
            let build = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let r = engine.execute_spec(&spec).unwrap();
            let solve = t1.elapsed().as_secs_f64() * 1e3;
            let stats = engine.view_cache().stats();
            print_row(
                &[
                    n.to_string(),
                    pass.into(),
                    format!("{build:.3}"),
                    format!("{solve:.3}"),
                    r.best_objective()
                        .map(|o| format!("{o:.1}"))
                        .unwrap_or_else(|| "-".into()),
                    format!("{}/{}", stats.hits, stats.misses),
                ],
                &widths,
            );
            json_rows.push(format!(
                "    {{\"n\": {n}, \"pass\": \"{pass}\", \"build_ms\": {build:.3}, \
                 \"solve_ms\": {solve:.3}, \"total_ms\": {:.3}, \"objective\": {}, \
                 \"cache_hits\": {}, \"cache_misses\": {}}}",
                build + solve,
                r.best_objective()
                    .map(|o| format!("{o:.3}"))
                    .unwrap_or_else(|| "null".into()),
                stats.hits,
                stats.misses,
            ));
            passes.push((pass, build, solve, r.best_objective(), r.best().cloned()));
        }
        let cold = passes.iter().find(|(p, ..)| *p == "cold").unwrap();
        let warm = passes.iter().find(|(p, ..)| *p == "warm").unwrap();
        let identical = passes
            .iter()
            .all(|(_, _, _, obj, best)| (*obj, best) == (cold.3, &cold.4));
        let speedup = (cold.1 + cold.2) / (warm.1 + warm.2).max(1e-9);
        print_row(
            &[
                n.to_string(),
                "verdict".into(),
                format!("{:.1}x", cold.1 / warm.1.max(1e-9)),
                format!("{speedup:.1}x total"),
                if identical {
                    "identical".into()
                } else {
                    "DIFFERENT (!)".into()
                },
                if cold.1 + cold.2 > warm.1 + warm.2 {
                    "faster".into()
                } else {
                    "SLOWER".into()
                },
            ],
            &widths,
        );
        all_identical &= identical;
    }
    let json = format!(
        "{{\n  \"experiment\": \"cache_reuse\",\n  \"query\": \"meal_plan\",\n{}\n  \"rows\": [\n{}\n  ]\n}}\n",
        resource_json(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_cache.json", &json) {
        Ok(()) => println!("\n(wrote BENCH_cache.json)\n"),
        Err(e) => println!("\n(could not write BENCH_cache.json: {e})\n"),
    }
    all_identical
}

/// PARALLEL — the chunked columnar layout's intra-solver fan-out on a
/// threads × n grid over the meal-plan scenario. Two claims under test:
///
/// 1. **Determinism** (the gate): the same query + seed yields *bit-identical*
///    packages and objectives at every `num_threads` — chunk boundaries are
///    fixed and reductions combine in chunk order, so threads may change
///    wall-clock only. Any mismatch makes the caller exit nonzero.
/// 2. **Scaling** (informational): on multi-core hosts the data-parallel
///    scans (partitioning spreads, repair, neighbourhood) shorten; on a
///    single-core host the chunked path must simply not regress.
///
/// Writes `BENCH_parallel.json` as the machine-readable baseline. Returns
/// false when any parallel run's package differs from the sequential
/// reference.
fn parallel_scaling() -> bool {
    use packagebuilder::config::default_num_threads;
    let mut all_identical = true;
    println!("## PARALLEL — chunked fan-out across threads × n (meal plan)\n");
    let widths = [6, 16, 8, 12, 14, 12];
    print_header(
        &[
            "n",
            "strategy",
            "threads",
            "time (ms)",
            "objective",
            "identical",
        ],
        &widths,
    );
    let host = default_num_threads();
    let mut thread_grid: Vec<usize> = vec![1, 2];
    if host > 2 {
        thread_grid.push(host);
    }
    let mut json_rows: Vec<String> = Vec::new();
    for n in [2_000usize, 8_000, 20_000] {
        for (label, strategy) in [
            ("sketch-refine", Strategy::SketchRefine),
            ("local-search", Strategy::LocalSearch),
        ] {
            // The sequential run is the reference every parallel run must
            // reproduce bit for bit.
            let mut reference: Option<(Option<f64>, Option<Package>)> = None;
            for &threads in &thread_grid {
                let mut engine = recipe_engine(n, strategy);
                engine.config_mut().num_threads = threads;
                let t0 = Instant::now();
                let r = run(&engine, MEAL_PLAN_QUERY);
                let elapsed = t0.elapsed();
                let outcome = (r.best_objective(), r.best().cloned());
                let identical = match &reference {
                    None => {
                        reference = Some(outcome.clone());
                        true
                    }
                    Some(reference) => *reference == outcome,
                };
                all_identical &= identical;
                print_row(
                    &[
                        n.to_string(),
                        label.into(),
                        threads.to_string(),
                        ms(elapsed),
                        outcome
                            .0
                            .map(|o| format!("{o:.1}"))
                            .unwrap_or_else(|| "-".into()),
                        if identical {
                            "identical".into()
                        } else {
                            "DIFFERENT (!)".into()
                        },
                    ],
                    &widths,
                );
                json_rows.push(format!(
                    "    {{\"n\": {n}, \"strategy\": \"{label}\", \"threads\": {threads}, \
                     \"ms\": {:.3}, \"objective\": {}, \"identical\": {identical}}}",
                    elapsed.as_secs_f64() * 1e3,
                    outcome
                        .0
                        .map(|o| format!("{o:.3}"))
                        .unwrap_or_else(|| "null".into()),
                ));
            }
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"parallel_scaling\",\n  \"query\": \"meal_plan\",\n  \
         \"host_threads\": {host},\n{}\n  \"rows\": [\n{}\n  ]\n}}\n",
        resource_json(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => println!("\n(wrote BENCH_parallel.json)\n"),
        Err(e) => println!("\n(could not write BENCH_parallel.json: {e})\n"),
    }
    all_identical
}

/// BNB — the exact core after parallel branch and bound + warm-started
/// simplex, on a threads × n grid over the meal-plan scenario. Three claims
/// under test:
///
/// 1. **Determinism** (the gate): the exact solve returns bit-identical
///    packages, objectives, optimality flags *and* node/iteration counters
///    at every thread count — frontier batches have fixed composition and
///    merge in batch order, so threads change wall-clock only. Any mismatch
///    makes the caller exit nonzero.
/// 2. **Single-thread speed** (informational): warm-started children (dual
///    simplex from the parent's basis) should put the 1-thread exact solve
///    well under the pre-parallel baseline recorded in the SKETCH/PORTFOLIO
///    experiments.
/// 3. **Scaling** (informational): on multi-core hosts the batched LP
///    relaxation solves shorten wall-clock further; the objective-gap column
///    records how close sketch→refine gets to the proven optimum it races.
///
/// Writes `BENCH_bnb.json` (host core count included) as the
/// machine-readable baseline. Returns false when any multi-thread run
/// differs from its 1-thread reference.
fn bnb_exact_core() -> bool {
    use packagebuilder::config::default_num_threads;
    let mut all_identical = true;
    println!("## BNB — parallel branch & bound with warm starts across threads × n (meal plan)\n");
    let widths = [6, 16, 8, 12, 14, 10, 12];
    print_header(
        &[
            "n",
            "strategy",
            "threads",
            "time (ms)",
            "objective",
            "optimal?",
            "identical",
        ],
        &widths,
    );
    let host = default_num_threads();
    let mut thread_grid: Vec<usize> = vec![1, 2];
    if host > 2 {
        thread_grid.push(host);
    }
    let mut json_rows: Vec<String> = Vec::new();
    for n in [2_000usize, 8_000, 20_000] {
        // The approximate rival first: sketch→refine at one thread, the
        // latency/quality bar the exact core is chasing.
        let sketch_engine = recipe_engine(n, Strategy::SketchRefine);
        let t0 = Instant::now();
        let sketch = run(&sketch_engine, MEAL_PLAN_QUERY);
        let sketch_time = t0.elapsed();
        let sketch_obj = sketch.best_objective();
        print_row(
            &[
                n.to_string(),
                "sketch-refine".into(),
                "1".into(),
                ms(sketch_time),
                sketch_obj
                    .map(|o| format!("{o:.1}"))
                    .unwrap_or_else(|| "-".into()),
                "no".into(),
                "-".into(),
            ],
            &widths,
        );
        json_rows.push(format!(
            "    {{\"n\": {n}, \"strategy\": \"sketch-refine\", \"threads\": 1, \
             \"ms\": {:.3}, \"objective\": {}, \"optimal\": false, \
             \"nodes\": {}, \"iterations\": {}, \"identical\": true}}",
            sketch_time.as_secs_f64() * 1e3,
            sketch_obj
                .map(|o| format!("{o:.3}"))
                .unwrap_or_else(|| "null".into()),
            sketch.stats.nodes,
            sketch.stats.iterations,
        ));

        // The exact solve across the thread grid; 1 thread is the reference
        // every wider run must reproduce down to the counters.
        type Fingerprint = (Option<u64>, Option<Package>, bool, u64, u64);
        let mut reference: Option<(Fingerprint, std::time::Duration, Option<f64>)> = None;
        for &threads in &thread_grid {
            let mut engine = recipe_engine(n, Strategy::Ilp);
            engine.config_mut().num_threads = threads;
            let t0 = Instant::now();
            let r = run(&engine, MEAL_PLAN_QUERY);
            let elapsed = t0.elapsed();
            let fp: Fingerprint = (
                r.best_objective().map(f64::to_bits),
                r.best().cloned(),
                r.optimal,
                r.stats.nodes,
                r.stats.iterations,
            );
            let identical = match &reference {
                None => {
                    reference = Some((fp.clone(), elapsed, r.best_objective()));
                    true
                }
                Some((reference, ..)) => *reference == fp,
            };
            all_identical &= identical;
            print_row(
                &[
                    n.to_string(),
                    "ilp".into(),
                    threads.to_string(),
                    ms(elapsed),
                    r.best_objective()
                        .map(|o| format!("{o:.1}"))
                        .unwrap_or_else(|| "-".into()),
                    if r.optimal { "yes".into() } else { "no".into() },
                    if identical {
                        "identical".into()
                    } else {
                        "DIFFERENT (!)".into()
                    },
                ],
                &widths,
            );
            json_rows.push(format!(
                "    {{\"n\": {n}, \"strategy\": \"ilp\", \"threads\": {threads}, \
                 \"ms\": {:.3}, \"objective\": {}, \"optimal\": {}, \
                 \"nodes\": {}, \"iterations\": {}, \"identical\": {identical}}}",
                elapsed.as_secs_f64() * 1e3,
                r.best_objective()
                    .map(|o| format!("{o:.3}"))
                    .unwrap_or_else(|| "null".into()),
                r.optimal,
                r.stats.nodes,
                r.stats.iterations,
            ));
        }
        // Verdict: exact-vs-approximate latency and the objective gap the
        // race pays for approximating.
        if let Some((_, ilp_time, ilp_obj)) = &reference {
            let gap = match (ilp_obj, sketch_obj) {
                (Some(o), Some(s)) if *o > 0.0 => format!("{:.2}% gap", 100.0 * (o - s) / o),
                _ => "-".into(),
            };
            print_row(
                &[
                    n.to_string(),
                    "verdict".into(),
                    "-".into(),
                    format!(
                        "{:.1}x sketch",
                        ilp_time.as_secs_f64() / sketch_time.as_secs_f64().max(1e-9)
                    ),
                    gap,
                    "-".into(),
                    if all_identical {
                        "identical".into()
                    } else {
                        "DIFFERENT (!)".into()
                    },
                ],
                &widths,
            );
        }
    }
    let json = format!(
        "{{\n  \"experiment\": \"bnb_exact_core\",\n  \"query\": \"meal_plan\",\n  \
         \"host_threads\": {host},\n{}\n  \"rows\": [\n{}\n  ]\n}}\n",
        resource_json(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_bnb.json", &json) {
        Ok(()) => println!("\n(wrote BENCH_bnb.json)\n"),
        Err(e) => println!("\n(could not write BENCH_bnb.json: {e})\n"),
    }
    all_identical
}

/// PAGED — the out-of-core column store: the meal-plan query solved twice
/// per n, once with fully resident columns (the reference) and once forced
/// out-of-core through a buffer pool capped far below the view's column
/// bytes. Two claims under test:
///
/// 1. **Bit-identity** (the gate): the paged run returns the same packages,
///    objectives, optimality flags and node/iteration counters as the
///    resident run — storage mode decides where column bytes live, never
///    results. Any mismatch makes the caller exit nonzero.
/// 2. **Bounded memory** (informational): each paged cell records its pool
///    hit/miss/eviction deltas, and the json carries the process's peak RSS,
///    so future PRs can see the paged path genuinely faulting pages through
///    a small pool instead of quietly going resident.
///
/// `PB_PAGED_LARGE=1` adds the out-of-core flagship row: n = 10^7 solved via
/// sketch→refine with the pool capped below 25% of the view's column bytes
/// (paged only — a resident reference at that scale is exactly the footprint
/// the substrate exists to avoid).
fn paged_out_of_core() -> bool {
    use packagebuilder::par::chunk_count;
    use packagebuilder::pool_stats;

    let mut all_identical = true;
    println!("## PAGED — out-of-core column store vs resident (meal plan)\n");
    let widths = [9, 10, 12, 14, 12, 16, 12];
    print_header(
        &[
            "n",
            "mode",
            "time (ms)",
            "objective",
            "pool pages",
            "pool h/m/e",
            "identical",
        ],
        &widths,
    );
    let mut json_rows: Vec<String> = Vec::new();

    // One solve in the requested storage mode, with the pool-counter deltas
    // it produced. `pool: None` pins the build resident.
    let solve = |n: usize, strategy: Strategy, pool: Option<usize>| {
        let mut engine = recipe_engine(n, strategy);
        match pool {
            Some(pages) => {
                engine.config_mut().column_memory_budget = 0;
                engine.config_mut().pool_pages = pages;
            }
            None => engine.config_mut().column_memory_budget = usize::MAX,
        }
        let before = pool_stats();
        let t0 = Instant::now();
        let r = run(&engine, MEAL_PLAN_QUERY);
        let elapsed = t0.elapsed();
        let after = pool_stats();
        (
            r,
            elapsed,
            (
                after.hits - before.hits,
                after.misses - before.misses,
                after.evictions - before.evictions,
            ),
        )
    };
    let mut emit = |n: usize,
                    mode: &str,
                    pool: Option<usize>,
                    r: &packagebuilder::PackageResult,
                    elapsed: std::time::Duration,
                    (h, m, e): (u64, u64, u64),
                    identical: bool| {
        print_row(
            &[
                n.to_string(),
                mode.into(),
                ms(elapsed),
                r.best_objective()
                    .map(|o| format!("{o:.1}"))
                    .unwrap_or_else(|| "-".into()),
                pool.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
                format!("{h}/{m}/{e}"),
                if identical {
                    "identical".into()
                } else {
                    "DIFFERENT (!)".into()
                },
            ],
            &widths,
        );
        json_rows.push(format!(
            "    {{\"n\": {n}, \"mode\": \"{mode}\", \"ms\": {:.3}, \"objective\": {}, \
             \"optimal\": {}, \"nodes\": {}, \"iterations\": {}, \"pool_pages\": {}, \
             \"pool_hits\": {h}, \"pool_misses\": {m}, \"pool_evictions\": {e}, \
             \"identical\": {identical}}}",
            elapsed.as_secs_f64() * 1e3,
            r.best_objective()
                .map(|o| format!("{o:.3}"))
                .unwrap_or_else(|| "null".into()),
            r.optimal,
            r.stats.nodes,
            r.stats.iterations,
            pool.map(|p| p.to_string()).unwrap_or_else(|| "null".into()),
        ));
    };

    for n in [2_000usize, 20_000, 120_000] {
        // The pool cap: well under the view's upper-bound page count
        // (3 term columns × one page per chunk of n), floored at the
        // 2-page minimum for the small sizes.
        let pool = (3 * chunk_count(n) / 16).max(2);
        let (reference, ref_time, ref_pool) = solve(n, Strategy::Auto, None);
        emit(n, "resident", None, &reference, ref_time, ref_pool, true);
        let (paged, paged_time, paged_pool) = solve(n, Strategy::Auto, Some(pool));
        let identical = paged.packages == reference.packages
            && paged.objectives == reference.objectives
            && paged.optimal == reference.optimal
            && paged.stats.nodes == reference.stats.nodes
            && paged.stats.iterations == reference.stats.iterations;
        all_identical &= identical;
        emit(
            n,
            "paged",
            Some(pool),
            &paged,
            paged_time,
            paged_pool,
            identical,
        );
    }

    // The flagship out-of-core row, opt-in because datagen alone takes a
    // while at this scale: 10^7 rows via sketch→refine, pool under 25% of
    // even the worst-case column footprint.
    if std::env::var("PB_PAGED_LARGE").map(|v| v == "1") == Ok(true) {
        let n = 10_000_000usize;
        let pool = 3 * chunk_count(n) / 16;
        let (r, elapsed, counters) = solve(n, Strategy::SketchRefine, Some(pool));
        emit(n, "paged-large", Some(pool), &r, elapsed, counters, true);
    }

    let json = format!(
        "{{\n  \"experiment\": \"paged_out_of_core\",\n  \"query\": \"meal_plan\",\n{}\n  \"rows\": [\n{}\n  ]\n}}\n",
        resource_json(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_paged.json", &json) {
        Ok(()) => println!("\n(wrote BENCH_paged.json)\n"),
        Err(e) => println!("\n(could not write BENCH_paged.json: {e})\n"),
    }
    all_identical
}

/// SHADE — progressive shading: the hierarchical sketch path for 10^6+
/// candidates (the meal plan without the gluten filter, so candidates == n).
/// Two deterministic gates make the caller exit nonzero:
///
/// 1. **Cross-thread fingerprint identity**: the shading run's packages,
///    objective bits and node/iteration counters must be bit-identical at
///    1, 2 and 8 threads.
/// 2. **Greedy floor**: shading's objective must match or beat the greedy
///    baseline's at every n — the solver's anytime contract makes this
///    structural, so a miss is a real quality regression.
///
/// Flat sketch→refine rides along as the quality/latency baseline where its
/// sketch is tractable (through 120k by default; at 10^6 with
/// `PB_SHADE_LARGE=1`, where its ~15.6k-variable sketch takes minutes).
/// `PB_SHADE_LARGE=1` also adds the flagship n = 10^7 row, solved
/// out-of-core through the paged-bench pool cap — the configuration whose
/// flat baseline PR 7 measured at ~26 minutes; `PB_SHADE_FLAT=1`
/// additionally re-measures that flat 10^7 baseline for a one-file A/B.
/// Writes `BENCH_shade.json`.
fn shade_scaling() -> bool {
    use packagebuilder::par::chunk_count;

    let mut ok = true;
    println!("## SHADE — progressive shading vs flat sketch→refine (meal plan, no filter)\n");
    let widths = [10, 20, 8, 12, 14, 12, 12];
    print_header(
        &[
            "n",
            "strategy",
            "threads",
            "time (ms)",
            "objective",
            "vs greedy",
            "identical",
        ],
        &widths,
    );
    let mut json_rows: Vec<String> = Vec::new();

    let solve = |n: usize, strategy: Strategy, threads: usize, pool: Option<usize>| {
        let mut engine = recipe_engine(n, strategy);
        engine.config_mut().num_threads = threads;
        if let Some(pages) = pool {
            engine.config_mut().column_memory_budget = 0;
            engine.config_mut().pool_pages = pages;
        }
        let t0 = Instant::now();
        let r = run(&engine, MEAL_PLAN_QUERY_NO_FILTER);
        (r, t0.elapsed())
    };
    // Relative objective vs the greedy floor, as a signed percentage.
    let vs_greedy = |r: &packagebuilder::PackageResult, g: &packagebuilder::PackageResult| match (
        r.best_objective(),
        g.best_objective(),
    ) {
        (Some(v), Some(f)) => format!("{:+.2}%", (v - f) / f.abs().max(1e-9) * 100.0),
        _ => "-".into(),
    };
    // The query MAXIMIZEs, so the floor gate is a one-sided comparison.
    let meets_floor = |r: &packagebuilder::PackageResult, g: &packagebuilder::PackageResult| match (
        r.best_objective(),
        g.best_objective(),
    ) {
        (Some(v), Some(f)) => v + 1e-9 >= f,
        (_, None) => true,
        (None, Some(_)) => false,
    };
    let obj_bits = |r: &packagebuilder::PackageResult| {
        r.objectives
            .iter()
            .map(|o| o.map(f64::to_bits))
            .collect::<Vec<_>>()
    };
    let mut emit = |n: usize,
                    strategy: &str,
                    threads: usize,
                    r: &packagebuilder::PackageResult,
                    elapsed: std::time::Duration,
                    vs: String,
                    identical: bool| {
        print_row(
            &[
                n.to_string(),
                strategy.into(),
                threads.to_string(),
                ms(elapsed),
                r.best_objective()
                    .map(|o| format!("{o:.1}"))
                    .unwrap_or_else(|| "-".into()),
                vs,
                if identical {
                    "identical".into()
                } else {
                    "DIFFERENT (!)".into()
                },
            ],
            &widths,
        );
        json_rows.push(format!(
            "    {{\"n\": {n}, \"strategy\": \"{strategy}\", \"threads\": {threads}, \
             \"ms\": {:.3}, \"objective\": {}, \"optimal\": {}, \"nodes\": {}, \
             \"iterations\": {}, \"identical\": {identical}}}",
            elapsed.as_secs_f64() * 1e3,
            r.best_objective()
                .map(|o| format!("{o:.3}"))
                .unwrap_or_else(|| "null".into()),
            r.optimal,
            r.stats.nodes,
            r.stats.iterations,
        ));
    };

    let large = std::env::var("PB_SHADE_LARGE").map(|v| v == "1") == Ok(true);
    for n in [20_000usize, 120_000, 1_000_000] {
        let (g, g_time) = solve(n, Strategy::Greedy, 1, None);
        emit(n, "greedy", 1, &g, g_time, "-".into(), true);
        if n <= 120_000 || large {
            let (f, f_time) = solve(n, Strategy::SketchRefine, 1, None);
            emit(n, "sketch-refine", 1, &f, f_time, vs_greedy(&f, &g), true);
        }
        let (s1, s1_time) = solve(n, Strategy::ProgressiveShading, 1, None);
        let floor_ok = meets_floor(&s1, &g);
        if !floor_ok {
            eprintln!("SHADE: progressive shading fell below the greedy floor at n={n}");
        }
        ok &= floor_ok;
        emit(
            n,
            "progressive-shading",
            1,
            &s1,
            s1_time,
            vs_greedy(&s1, &g),
            true,
        );
        for threads in [2usize, 8] {
            let (st, st_time) = solve(n, Strategy::ProgressiveShading, threads, None);
            let identical = st.packages == s1.packages
                && obj_bits(&st) == obj_bits(&s1)
                && st.optimal == s1.optimal
                && st.stats.nodes == s1.stats.nodes
                && st.stats.iterations == s1.stats.iterations;
            if !identical {
                eprintln!(
                    "SHADE: progressive shading fingerprints differ between 1 and {threads} \
                     threads at n={n}"
                );
            }
            ok &= identical;
            emit(
                n,
                "progressive-shading",
                threads,
                &st,
                st_time,
                vs_greedy(&st, &g),
                identical,
            );
        }
    }

    // The flagship out-of-core row: 10^7 candidates through the paged-bench
    // pool cap. One shading run at the full thread budget (the wall-clock
    // headline; cross-thread identity is pinned on the grid above), gated on
    // the greedy floor like every other size.
    if large {
        let n = 10_000_000usize;
        let pool = 3 * chunk_count(n) / 16;
        let (g, g_time) = solve(n, Strategy::Greedy, 8, Some(pool));
        emit(n, "greedy", 8, &g, g_time, "-".into(), true);
        if std::env::var("PB_SHADE_FLAT").map(|v| v == "1") == Ok(true) {
            let (f, f_time) = solve(n, Strategy::SketchRefine, 8, Some(pool));
            emit(n, "sketch-refine", 8, &f, f_time, vs_greedy(&f, &g), true);
        }
        let (s, s_time) = solve(n, Strategy::ProgressiveShading, 8, Some(pool));
        let floor_ok = meets_floor(&s, &g);
        if !floor_ok {
            eprintln!("SHADE: progressive shading fell below the greedy floor at n={n}");
        }
        ok &= floor_ok;
        emit(
            n,
            "progressive-shading",
            8,
            &s,
            s_time,
            vs_greedy(&s, &g),
            true,
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"shade_scaling\",\n  \"query\": \"meal_plan_no_filter\",\n{}\n  \"rows\": [\n{}\n  ]\n}}\n",
        resource_json(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_shade.json", &json) {
        Ok(()) => println!("\n(wrote BENCH_shade.json)\n"),
        Err(e) => println!("\n(could not write BENCH_shade.json: {e})\n"),
    }
    ok
}

fn e1_pruning() {
    println!("## E1 — cardinality-based pruning (§4.1)\n");
    let widths = [4, 14, 14, 16, 12, 14, 12];
    print_header(
        &[
            "n",
            "space 2^n",
            "space pruned",
            "reduction (log2)",
            "nodes full",
            "nodes pruned",
            "same optimum",
        ],
        &widths,
    );
    for n in [12usize, 16, 20, 24] {
        let table = recipe_table(n);
        let analyzed = paql::compile(MEAL_PLAN_QUERY_NO_FILTER, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        let bounds = derive_bounds(spec.view());
        let space = search_space(spec.view(), &bounds);
        let pruned = enumerate(
            spec.view(),
            EnumerationOptions {
                prune: true,
                keep: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let full = enumerate(
            spec.view(),
            EnumerationOptions {
                prune: false,
                keep: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let same = match (pruned.packages.first(), full.packages.first()) {
            (None, None) => "yes (both empty)".to_string(),
            (Some((_, a)), Some((_, b))) => {
                if (a.unwrap_or(0.0) - b.unwrap_or(0.0)).abs() < 1e-6 {
                    "yes".to_string()
                } else {
                    "NO".to_string()
                }
            }
            _ => "NO".to_string(),
        };
        print_row(
            &[
                n.to_string(),
                format!("{:.3e}", space.unpruned()),
                format!("{:.3e}", space.pruned().unwrap_or(f64::NAN)),
                format!("{:.1}", space.reduction_log2().unwrap_or(f64::NAN)),
                full.nodes.to_string(),
                pruned.nodes.to_string(),
                same,
            ],
            &widths,
        );
    }
    println!();
}

fn e2_strategies() {
    println!("## E2 — strategy crossover (§4, §5)\n");
    let widths = [6, 20, 12, 14, 14, 10];
    print_header(
        &[
            "n",
            "strategy",
            "time (ms)",
            "objective",
            "opt gap (%)",
            "optimal?",
        ],
        &widths,
    );
    for n in [20usize, 50, 200, 1000, 3000] {
        // The ILP optimum is the reference for the gap column.
        let ilp_engine = recipe_engine(n, Strategy::Ilp);
        let t0 = Instant::now();
        let ilp = run(&ilp_engine, MEAL_PLAN_QUERY);
        let ilp_time = t0.elapsed();
        let opt = ilp.best_objective();

        let mut rows: Vec<(String, std::time::Duration, Option<f64>, bool)> =
            vec![("ilp".into(), ilp_time, opt, true)];

        if n <= 24 {
            for (label, strat) in [
                ("exhaustive", Strategy::Exhaustive),
                ("pruned-enum", Strategy::PrunedEnumeration),
            ] {
                let engine = recipe_engine(n, strat);
                let t0 = Instant::now();
                let r = run(&engine, MEAL_PLAN_QUERY);
                rows.push((label.into(), t0.elapsed(), r.best_objective(), r.optimal));
            }
        } else if n <= 60 {
            let engine = recipe_engine(n, Strategy::PrunedEnumeration);
            let t0 = Instant::now();
            let r = run(&engine, MEAL_PLAN_QUERY);
            rows.push((
                "pruned-enum".into(),
                t0.elapsed(),
                r.best_objective(),
                r.optimal,
            ));
        }
        let ls_engine = recipe_engine(n, Strategy::LocalSearch);
        let t0 = Instant::now();
        let ls = run(&ls_engine, MEAL_PLAN_QUERY);
        rows.push((
            "local-search".into(),
            t0.elapsed(),
            ls.best_objective(),
            false,
        ));

        for (label, time, obj, optimal) in rows {
            let gap = match (obj, opt) {
                (Some(o), Some(best)) if best > 0.0 => format!("{:.2}", 100.0 * (best - o) / best),
                _ => "-".to_string(),
            };
            print_row(
                &[
                    n.to_string(),
                    label,
                    ms(time),
                    obj.map(|o| format!("{o:.1}")).unwrap_or_else(|| "-".into()),
                    gap,
                    if optimal { "yes".into() } else { "no".into() },
                ],
                &widths,
            );
        }
    }
    println!();
}

fn e3_replacement() {
    println!("## E3 — k-tuple replacement neighbourhood (§4.2)\n");
    let widths = [6, 26, 14, 16];
    print_header(&["n", "operation", "time (ms)", "result size"], &widths);
    for n in [100usize, 400, 1600, 6400] {
        let table = recipe_table(n);
        let analyzed = paql::compile(MEAL_PLAN_QUERY_NO_FILTER, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        // Pick the three recipes closest to 900 kcal: the package lands a few
        // hundred calories over the 2,500 budget, so single-tuple repairs exist
        // (mirroring the paper's 3,000-calorie example).
        let mut by_cal = spec.candidates.clone();
        by_cal.sort_by(|a, b| {
            let da = (table.value_f64(*a, "calories").unwrap() - 900.0).abs();
            let db = (table.value_f64(*b, "calories").unwrap() - 900.0).abs();
            da.total_cmp(&db)
        });
        let package = Package::from_ids(by_cal.iter().copied().take(3));
        let total: f64 = package
            .members()
            .map(|(id, m)| table.value_f64(id, "calories").unwrap() * m as f64)
            .sum();
        let t0 = Instant::now();
        let rel = single_replacement_query(
            &table,
            &package,
            &spec.candidates,
            "calories",
            total,
            2500.0,
        )
        .unwrap();
        print_row(
            &[
                n.to_string(),
                "1-replacement query".into(),
                ms(t0.elapsed()),
                format!("{} pairs", rel.len()),
            ],
            &widths,
        );
    }
    // Local search with k = 1 vs k = 2 at fixed n: neighbourhood blow-up.
    let table = recipe_table(300);
    let analyzed = paql::compile(MEAL_PLAN_QUERY_NO_FILTER, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();
    for k in [1usize, 2] {
        let t0 = Instant::now();
        let out = local_search(
            spec.view(),
            &LocalSearchOptions {
                k,
                restarts: 2,
                max_moves: 100,
                ..Default::default()
            },
        )
        .unwrap();
        print_row(
            &[
                "300".into(),
                format!("local search k={k}"),
                ms(t0.elapsed()),
                format!("{} evals", out.evaluations),
            ],
            &widths,
        );
    }
    println!();
}

fn e4_mealplan() {
    println!("## E4 — meal-plan query end to end (§2, §7)\n");
    let widths = [6, 14, 14, 16, 16, 14];
    print_header(
        &[
            "n",
            "ilp (ms)",
            "ls (ms)",
            "ilp objective",
            "ls objective",
            "ls/opt (%)",
        ],
        &widths,
    );
    for n in [100usize, 500, 2000, 5000] {
        let ilp_engine = recipe_engine(n, Strategy::Ilp);
        let t0 = Instant::now();
        let ilp = run(&ilp_engine, MEAL_PLAN_QUERY);
        let ilp_time = t0.elapsed();
        let ls_engine = recipe_engine(n, Strategy::LocalSearch);
        let t0 = Instant::now();
        let ls = run(&ls_engine, MEAL_PLAN_QUERY);
        let ls_time = t0.elapsed();
        let ratio = match (ls.best_objective(), ilp.best_objective()) {
            (Some(a), Some(b)) if b > 0.0 => format!("{:.1}", 100.0 * a / b),
            _ => "-".to_string(),
        };
        print_row(
            &[
                n.to_string(),
                ms(ilp_time),
                ms(ls_time),
                ilp.best_objective()
                    .map(|o| format!("{o:.1}"))
                    .unwrap_or("-".into()),
                ls.best_objective()
                    .map(|o| format!("{o:.1}"))
                    .unwrap_or("-".into()),
                ratio,
            ],
            &widths,
        );
    }
    println!();
}

fn e5_interface() {
    println!("## E5 — interface backends (§3.1–3.2, Fig. 1)\n");
    let widths = [8, 28, 14, 14];
    print_header(&["size", "operation", "time (ms)", "output"], &widths);
    for n in [1_000usize, 10_000, 50_000] {
        let table = recipe_table(n);
        let t0 = Instant::now();
        let s = suggest(
            &table,
            "P",
            &Highlight::Cell {
                tuple: TupleId(0),
                column: "fat".into(),
            },
        )
        .unwrap();
        print_row(
            &[
                n.to_string(),
                "suggest (cell highlight)".into(),
                ms(t0.elapsed()),
                format!("{} suggestions", s.len()),
            ],
            &widths,
        );
        let t0 = Instant::now();
        let s = suggest(
            &table,
            "P",
            &Highlight::Column {
                column: "calories".into(),
            },
        )
        .unwrap();
        print_row(
            &[
                n.to_string(),
                "suggest (column highlight)".into(),
                ms(t0.elapsed()),
                format!("{} suggestions", s.len()),
            ],
            &widths,
        );
    }
    let query = paql::parse(MEAL_PLAN_QUERY).unwrap();
    let t0 = Instant::now();
    let text = paql::pretty::describe_query(&query);
    print_row(
        &[
            "-".into(),
            "natural-language description".into(),
            ms(t0.elapsed()),
            format!("{} chars", text.len()),
        ],
        &widths,
    );
    let table = recipe_table(2_000);
    let analyzed = paql::compile(MEAL_PLAN_QUERY, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();
    for m in [100usize, 1_000, 10_000] {
        let packages: Vec<Package> = (0..m)
            .map(|i| {
                Package::from_ids(
                    spec.candidates
                        .iter()
                        .copied()
                        .cycle()
                        .skip(i % spec.candidates.len())
                        .take(3),
                )
            })
            .collect();
        let t0 = Instant::now();
        let summary = summarize(&spec, &packages, Some(0)).unwrap();
        print_row(
            &[
                m.to_string(),
                "2-D package-space summary".into(),
                ms(t0.elapsed()),
                format!("{} glyphs", summary.glyphs.len()),
            ],
            &widths,
        );
    }
    println!();
}

fn e6_multiple() {
    println!("## E6 — multiple & diverse packages (§5)\n");
    let widths = [6, 26, 14, 16];
    print_header(&["p", "method", "time (ms)", "result"], &widths);
    let table = recipe_table(200);
    let q = "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1500 MAXIMIZE SUM(P.protein)";
    let analyzed = paql::compile(q, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();
    for p in [1usize, 5, 10, 20] {
        let t0 = Instant::now();
        let out = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            p,
            &Budget::unlimited(),
        )
        .unwrap();
        print_row(
            &[
                p.to_string(),
                "ilp + no-good cuts".into(),
                ms(t0.elapsed()),
                format!("{} packages", out.packages.len()),
            ],
            &widths,
        );
    }
    // Diversity: top-k by objective vs max-min diverse selection.
    let small = recipe_table(18);
    let analyzed = paql::compile(q, small.schema()).unwrap();
    let small_spec = PackageSpec::build(&analyzed, &small).unwrap();
    let pool: Vec<Package> = enumerate(
        small_spec.view(),
        EnumerationOptions {
            keep: 5_000,
            ..Default::default()
        },
    )
    .unwrap()
    .packages
    .into_iter()
    .map(|(p, _)| p)
    .collect();
    for k in [5usize, 10] {
        let topk: Vec<Package> = pool.iter().take(k).cloned().collect();
        let t0 = Instant::now();
        let diverse = select_diverse(&pool, k);
        print_row(
            &[
                k.to_string(),
                "max-min diverse selection".into(),
                ms(t0.elapsed()),
                format!(
                    "div {:.2} vs top-k {:.2}",
                    diversity_score(&diverse),
                    diversity_score(&topk)
                ),
            ],
            &widths,
        );
    }
    println!();
}

fn e7_repeat() {
    println!("## E7 — REPEAT multiplicities (§2)\n");
    let widths = [8, 14, 16, 18];
    print_header(
        &["repeat", "time (ms)", "objective", "max multiplicity"],
        &widths,
    );
    let engine = recipe_engine(300, Strategy::Ilp);
    let mut last = f64::NEG_INFINITY;
    for k in [1u32, 2, 3, 4] {
        let q = format!(
            "SELECT PACKAGE(R) AS P FROM recipes R REPEAT {k} \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
             MAXIMIZE SUM(P.protein)"
        );
        let t0 = Instant::now();
        let r = run(&engine, &q);
        let obj = r.best_objective().unwrap_or(f64::NAN);
        let monotone = if obj + 1e-6 >= last {
            ""
        } else {
            "  (NOT monotone!)"
        };
        last = obj;
        print_row(
            &[
                k.to_string(),
                ms(t0.elapsed()),
                format!("{obj:.1}{monotone}"),
                r.best()
                    .map(|p| p.max_multiplicity().to_string())
                    .unwrap_or("-".into()),
            ],
            &widths,
        );
    }
    println!();
}

fn e8_explore() {
    println!("## E8 — adaptive exploration (§3.3)\n");
    let widths = [6, 8, 14, 18, 20];
    print_header(
        &[
            "n",
            "round",
            "time (ms)",
            "locked kept?",
            "inferred constraints",
        ],
        &widths,
    );
    for n in [500usize, 5_000] {
        let engine = recipe_engine(n, Strategy::Ilp);
        let query = paql::parse(MEAL_PLAN_QUERY).unwrap();
        let mut session = ExplorationSession::new(query);
        let t0 = Instant::now();
        session.sample(&engine).unwrap();
        print_row(
            &[
                n.to_string(),
                "0".into(),
                ms(t0.elapsed()),
                "-".into(),
                "-".into(),
            ],
            &widths,
        );
        // Lock one tuple per round and refine.
        for round in 1..=3usize {
            let keep = session.current().unwrap().tuple_ids()[0];
            session.lock(keep).unwrap();
            let t0 = Instant::now();
            let r = session.refine(&engine).unwrap();
            let kept = r
                .best()
                .map(|p| session.locked().all(|t| p.multiplicity(t) > 0))
                .unwrap_or(false);
            let inferred = session.inferred_constraints(&engine).unwrap().len();
            print_row(
                &[
                    n.to_string(),
                    round.to_string(),
                    ms(t0.elapsed()),
                    if kept { "yes".into() } else { "NO".into() },
                    inferred.to_string(),
                ],
                &widths,
            );
        }
    }
    println!();
}

/// GAUNTLET — the adversarial workload gauntlet: every scenario family in
/// the `datagen` registry × every engine strategy × the family's size grid,
/// each cell solved at 1 and 2 threads. Three gates make the caller exit
/// nonzero:
///
/// 1. **Validity / honesty**: every returned package must pass the
///    *interpreted* validity oracle (not the columnar path the solvers
///    themselves use), and queries registered infeasible must come back
///    empty from every strategy — honestly infeasible, never silently
///    invalid.
/// 2. **Cross-thread identity**: packages, objectives and optimality flags
///    — plus node/iteration counters outside the timing-raced portfolio —
///    must be bit-identical at 1 and 2 threads.
/// 3. **Objective gap**: the gated strategies (`Auto`, `Ilp`, `Portfolio`
///    — the routes a user lands on without opting into a heuristic) must
///    stay within the family's documented `ScenarioQuery::max_gap` of the
///    oracle: the exact optimum where some strategy proved one at this
///    size, the best known objective across strategies otherwise.
///    Explicitly-chosen heuristics (`Greedy`, `LocalSearch`,
///    `SketchRefine`, truncated enumeration) are recorded, not gated —
///    but `Auto` is gated *everywhere*, so any route it hands a query to
///    must clear the family threshold at that size.
///
/// Cells use deterministic truncation only — node and move caps, see
/// `pb_bench::gauntlet_config` — because a wall-clock budget would make
/// gate 2 unenforceable. Exact and enumeration strategies sit out sizes
/// above the family's `exact_cap`. `smoke` restricts each family to its
/// smallest size (the CI configuration); the plain `gauntlet` mode runs
/// the full grid plus the lineitem **large tier** (n = 10^6, and 10^7 with
/// `PB_GAUNTLET_LARGE=1`), where only the scalable strategies run and
/// progressive shading joins the gated set against a relaxed 5% bound.
/// Writes `BENCH_gauntlet.json`.
fn gauntlet(smoke: bool) -> bool {
    use datagen::{scenarios, Seed};
    use pb_bench::{gauntlet_engine, try_run, BENCH_SEED};

    // Every engine strategy except `Exhaustive`: the engine itself refuses
    // unpruned enumeration beyond a couple dozen candidates (by design —
    // a truncated walk of an unordered 2^n space says nothing), so it can
    // never run at gauntlet sizes.
    let strategies: &[(&str, Strategy)] = &[
        ("auto", Strategy::Auto),
        ("ilp", Strategy::Ilp),
        ("pruned-enum", Strategy::PrunedEnumeration),
        ("local-search", Strategy::LocalSearch),
        ("greedy", Strategy::Greedy),
        ("sketch-refine", Strategy::SketchRefine),
        ("progressive-shading", Strategy::ProgressiveShading),
        ("portfolio", Strategy::Portfolio),
    ];
    // Large-tier cells additionally gate progressive shading: at 10^6+ the
    // hierarchical path is the route `Auto` takes, so it must clear a gap
    // bound against the best known objective (greedy, and at 10^6 the flat
    // sketch) — relaxed to 5% because the oracle itself is a heuristic there.
    const LARGE_TIER_GAP: f64 = 0.05;
    let gated = |label: &str, large_tier: bool| {
        matches!(label, "auto" | "ilp" | "portfolio")
            || (large_tier && label == "progressive-shading")
    };
    let exactish = |label: &str| matches!(label, "ilp" | "portfolio" | "pruned-enum");

    println!(
        "## GAUNTLET{} — scenario × strategy × n; gates: validity, cross-thread identity, gap\n",
        if smoke { " (smoke)" } else { "" }
    );

    let mut failures: Vec<String> = Vec::new();
    let mut json_rows: Vec<String> = Vec::new();

    struct Cell {
        label: &'static str,
        ms: f64,
        objective: Option<f64>,
        optimal: bool,
        empty: bool,
        identical: bool,
        nodes: u64,
        iterations: u64,
        pool: [u64; 4],
    }

    for scenario in scenarios() {
        println!("### {} — {}\n", scenario.name, scenario.summary);
        let widths = [20, 8, 13, 10, 12, 8, 9, 10];
        print_header(
            &[
                "query",
                "n",
                "strategy",
                "time (ms)",
                "objective",
                "gap %",
                "optimal?",
                "identical",
            ],
            &widths,
        );
        let mut sizes: Vec<usize> = if smoke {
            vec![scenario.gauntlet_sizes[0]]
        } else {
            scenario.gauntlet_sizes.to_vec()
        };
        // The large tier: sizes past the registered grid, where only the
        // scalable strategies run and progressive shading joins the gated
        // set. 10^6 rides the full (non-smoke) gauntlet; the 10^7 flagship
        // is opt-in via `PB_GAUNTLET_LARGE=1` (datagen alone takes a while),
        // mirroring the paged bench's `PB_PAGED_LARGE`.
        if !smoke && scenario.name == "lineitem" {
            sizes.push(1_000_000);
            if std::env::var("PB_GAUNTLET_LARGE").map(|v| v == "1") == Ok(true) {
                sizes.push(10_000_000);
            }
        }
        for q in &scenario.queries {
            for &n in &sizes {
                // The independent validity oracle for this (query, n). The
                // engine re-checks results internally, but the gate must not
                // trust the code path it is gating.
                let table = (scenario.build)(n, Seed(BENCH_SEED));
                let spec = match paql::compile(&q.text, table.schema())
                    .map_err(|e| e.to_string())
                    .and_then(|a| PackageSpec::build(&a, &table).map_err(|e| e.to_string()))
                {
                    Ok(s) => s,
                    Err(e) => {
                        failures.push(format!(
                            "{}/{} n={n}: query rejected: {e}",
                            scenario.name, q.label
                        ));
                        continue;
                    }
                };

                let large_tier = n > *scenario.gauntlet_sizes.last().unwrap();
                let mut cells: Vec<Cell> = Vec::new();
                for &(label, strategy) in strategies {
                    if exactish(label) && n > scenario.exact_cap {
                        continue;
                    }
                    // Large-tier cells run the scalable trio only: exact and
                    // search strategies would grind for hours at 10^6+, and
                    // at 10^7 the flat sketch is itself the multi-minute
                    // baseline — the tier exists to gate progressive shading
                    // against greedy and (at 10^6) flat sketch-refine.
                    if large_tier
                        && !matches!(label, "greedy" | "sketch-refine" | "progressive-shading")
                    {
                        continue;
                    }
                    if n >= 10_000_000 && label == "sketch-refine" {
                        continue;
                    }
                    let ctx = format!("{}/{} n={n} {label}", scenario.name, q.label);
                    let solve = |threads: usize| {
                        let engine = gauntlet_engine(
                            (scenario.build)(n, Seed(BENCH_SEED)),
                            strategy,
                            threads,
                        );
                        let t0 = Instant::now();
                        let r = try_run(&engine, &q.text);
                        (r, t0.elapsed())
                    };
                    let pool_before = packagebuilder::pool_stats();
                    let (r1, elapsed) = solve(1);
                    let pool_after = packagebuilder::pool_stats();
                    let r1 = match r1 {
                        Ok(r) => r,
                        Err(e) => {
                            failures.push(format!("{ctx}: engine error: {e}"));
                            continue;
                        }
                    };
                    // Gate 1: validity / honesty.
                    for p in &r1.packages {
                        match spec.is_valid_interpreted(p) {
                            Ok(true) => {}
                            Ok(false) => failures.push(format!("{ctx}: INVALID package returned")),
                            Err(e) => failures.push(format!("{ctx}: validity oracle error: {e}")),
                        }
                    }
                    if !q.expect_feasible && !r1.is_empty() {
                        failures.push(format!(
                            "{ctx}: returned a package on a query registered infeasible"
                        ));
                    }
                    // Gate 2: cross-thread identity.
                    let (r2, _) = solve(2);
                    let identical = match r2 {
                        Err(e) => {
                            failures.push(format!("{ctx}: engine error at 2 threads: {e}"));
                            false
                        }
                        Ok(r2) => {
                            let bits = |r: &packagebuilder::PackageResult| {
                                r.objectives
                                    .iter()
                                    .map(|o| o.map(f64::to_bits))
                                    .collect::<Vec<_>>()
                            };
                            let same = r1.packages == r2.packages
                                && bits(&r1) == bits(&r2)
                                && r1.optimal == r2.optimal
                                && (label == "portfolio"
                                    || (r1.stats.nodes == r2.stats.nodes
                                        && r1.stats.iterations == r2.stats.iterations));
                            if !same {
                                failures
                                    .push(format!("{ctx}: results differ between 1 and 2 threads"));
                            }
                            same
                        }
                    };
                    cells.push(Cell {
                        label,
                        ms: elapsed.as_secs_f64() * 1e3,
                        objective: r1.best_objective(),
                        optimal: r1.optimal,
                        empty: r1.is_empty(),
                        identical,
                        nodes: r1.stats.nodes,
                        iterations: r1.stats.iterations,
                        pool: [
                            pool_after.hits - pool_before.hits,
                            pool_after.misses - pool_before.misses,
                            pool_after.evictions - pool_before.evictions,
                            pool_after.pages_spilled - pool_before.pages_spilled,
                        ],
                    });
                }

                // The oracle. Every registry gauntlet query MAXIMIZEs, so
                // "best known" is the maximum across strategies.
                let proven = cells
                    .iter()
                    .filter(|c| c.optimal)
                    .filter_map(|c| c.objective)
                    .fold(None, |acc: Option<f64>, o| {
                        Some(acc.map_or(o, |a| a.max(o)))
                    });
                let best_known = cells
                    .iter()
                    .filter_map(|c| c.objective)
                    .fold(None, |acc: Option<f64>, o| {
                        Some(acc.map_or(o, |a| a.max(o)))
                    });
                let oracle = proven.or(best_known);

                // Gate 3 plus reporting.
                for c in &cells {
                    let gap = match (oracle, c.objective) {
                        (Some(o), Some(v)) => Some(((o - v) / o.abs().max(1e-9)).max(0.0)),
                        _ => None,
                    };
                    let cell_max_gap = if large_tier {
                        q.max_gap.max(LARGE_TIER_GAP)
                    } else {
                        q.max_gap
                    };
                    if q.expect_feasible && gated(c.label, large_tier) {
                        match gap {
                            Some(g) if g <= cell_max_gap + 1e-12 => {}
                            Some(g) => failures.push(format!(
                                "{}/{} n={n} {}: gap {:.3}% exceeds the family max {:.3}%",
                                scenario.name,
                                q.label,
                                c.label,
                                g * 100.0,
                                cell_max_gap * 100.0
                            )),
                            None if c.empty => failures.push(format!(
                                "{}/{} n={n} {}: no package on a feasible query",
                                scenario.name, q.label, c.label
                            )),
                            None => {}
                        }
                    }
                    print_row(
                        &[
                            q.label.to_string(),
                            n.to_string(),
                            c.label.to_string(),
                            format!("{:.3}", c.ms),
                            c.objective
                                .map(|o| format!("{o:.1}"))
                                .unwrap_or_else(|| "-".into()),
                            gap.map(|g| format!("{:.2}", g * 100.0))
                                .unwrap_or_else(|| "-".into()),
                            if c.optimal { "yes".into() } else { "no".into() },
                            if c.identical {
                                "identical".into()
                            } else {
                                "DIFFERENT (!)".into()
                            },
                        ],
                        &widths,
                    );
                    json_rows.push(format!(
                        "    {{\"scenario\": \"{}\", \"query\": \"{}\", \"n\": {n}, \
                         \"strategy\": \"{}\", \"ms\": {:.3}, \"objective\": {}, \
                         \"gap\": {}, \"max_gap\": {}, \"gated\": {}, \"optimal\": {}, \
                         \"empty\": {}, \"identical\": {}, \"oracle\": {}, \
                         \"nodes\": {}, \"iterations\": {}, \
                         \"pool\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
                         \"pages_spilled\": {}}}}}",
                        scenario.name,
                        q.label,
                        c.label,
                        c.ms,
                        c.objective
                            .map(|o| format!("{o:.3}"))
                            .unwrap_or_else(|| "null".into()),
                        gap.map(|g| format!("{g:.6}"))
                            .unwrap_or_else(|| "null".into()),
                        cell_max_gap,
                        gated(c.label, large_tier),
                        c.optimal,
                        c.empty,
                        c.identical,
                        oracle
                            .map(|o| format!("{o:.3}"))
                            .unwrap_or_else(|| "null".into()),
                        c.nodes,
                        c.iterations,
                        c.pool[0],
                        c.pool[1],
                        c.pool[2],
                        c.pool[3],
                    ));
                }
            }
        }
        println!();
    }

    let json = format!(
        "{{\n  \"experiment\": \"gauntlet\",\n  \"smoke\": {smoke},\n  \"seed\": {BENCH_SEED},\n{}\n  \"rows\": [\n{}\n  ]\n}}\n",
        resource_json(),
        json_rows.join(",\n")
    );
    match std::fs::write("BENCH_gauntlet.json", &json) {
        Ok(()) => println!("(wrote BENCH_gauntlet.json)\n"),
        Err(e) => println!("(could not write BENCH_gauntlet.json: {e})\n"),
    }
    if !failures.is_empty() {
        println!("GAUNTLET failures:");
        for f in &failures {
            println!("  - {f}");
        }
    }
    failures.is_empty()
}
