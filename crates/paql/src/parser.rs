//! Recursive-descent parser for PaQL.

use minidb::{BinaryOp, Expr, UnaryOp, Value};

use crate::ast::{
    AggCall, AggFunc, CmpOp, GlobalArithOp, GlobalConstraint, GlobalExpr, GlobalFormula, Objective,
    ObjectiveDirection, PaqlQuery,
};
use crate::error::PaqlError;
use crate::lexer::tokenize;
use crate::token::{Keyword, SpannedToken, Token};
use crate::PaqlResult;

/// Parses a PaQL query.
pub fn parse(source: &str) -> PaqlResult<PaqlQuery> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        source_len: source.len(),
    };
    let query = parser.parse_query()?;
    parser.expect_end()?;
    Ok(query)
}

/// Parses a standalone scalar expression (used by the interface layer when a
/// user types a base constraint directly into the template).
pub fn parse_base_expr(source: &str) -> PaqlResult<Expr> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        source_len: source.len(),
    };
    let expr = parser.parse_expr()?;
    parser.expect_end()?;
    Ok(expr)
}

/// Parses a standalone global formula (used for interactive constraint
/// refinement in the SUCH THAT panel).
pub fn parse_global_formula(source: &str) -> PaqlResult<GlobalFormula> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        source_len: source.len(),
    };
    let formula = parser.parse_formula()?;
    parser.expect_end()?;
    Ok(formula)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    source_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or(self.source_len)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> PaqlResult<T> {
        Err(PaqlError::Parse {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn expect_keyword(&mut self, kw: Keyword) -> PaqlResult<()> {
        match self.peek() {
            Some(Token::Keyword(k)) if *k == kw => {
                self.advance();
                Ok(())
            }
            other => self.error(format!("expected {kw:?}, found {}", describe(other))),
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if *k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, token: &Token) -> PaqlResult<()> {
        match self.peek() {
            Some(t) if t == token => {
                self.advance();
                Ok(())
            }
            other => self.error(format!("expected '{token}', found {}", describe(other))),
        }
    }

    fn expect_ident(&mut self) -> PaqlResult<String> {
        match self.peek().cloned() {
            Some(Token::Ident(s)) => {
                self.advance();
                Ok(s)
            }
            other => self.error(format!(
                "expected an identifier, found {}",
                describe(other.as_ref())
            )),
        }
    }

    fn expect_end(&mut self) -> PaqlResult<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.error(format!(
                "unexpected trailing input: {}",
                describe(self.peek())
            ))
        }
    }

    // ---- query ----

    fn parse_query(&mut self) -> PaqlResult<PaqlQuery> {
        self.expect_keyword(Keyword::Select)?;
        self.expect_keyword(Keyword::Package)?;
        self.expect_token(&Token::LParen)?;
        let package_of = self.expect_ident()?;
        self.expect_token(&Token::RParen)?;
        self.expect_keyword(Keyword::As)?;
        let package_alias = self.expect_ident()?;

        self.expect_keyword(Keyword::From)?;
        let relation = self.expect_ident()?;
        // Optional relation alias (an identifier that is not a clause keyword).
        let relation_alias = match self.peek() {
            Some(Token::Ident(_)) => Some(self.expect_ident()?),
            _ => None,
        };
        // The identifier inside PACKAGE(...) must match the alias (or the
        // relation name when no alias is given).
        let target = relation_alias.as_deref().unwrap_or(relation.as_str());
        if !package_of.eq_ignore_ascii_case(target) && !package_of.eq_ignore_ascii_case(&relation) {
            return Err(PaqlError::Semantic(format!(
                "PACKAGE({package_of}) does not reference the FROM relation '{relation}'{}",
                relation_alias
                    .as_deref()
                    .map(|a| format!(" (alias '{a}')"))
                    .unwrap_or_default()
            )));
        }

        let repeat = if self.eat_keyword(Keyword::Repeat) {
            match self.advance() {
                Some(Token::Number(n)) if n >= 1.0 && n.fract() == 0.0 => Some(n as u32),
                _ => return self.error("REPEAT expects a positive integer"),
            }
        } else {
            None
        };

        let where_clause = if self.eat_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let such_that = if self.eat_keyword(Keyword::Such) {
            self.expect_keyword(Keyword::That)?;
            Some(self.parse_formula()?)
        } else {
            None
        };

        let objective = match self.peek() {
            Some(Token::Keyword(Keyword::Maximize)) => {
                self.advance();
                Some(Objective {
                    direction: ObjectiveDirection::Maximize,
                    expr: self.parse_global_expr()?,
                })
            }
            Some(Token::Keyword(Keyword::Minimize)) => {
                self.advance();
                Some(Objective {
                    direction: ObjectiveDirection::Minimize,
                    expr: self.parse_global_expr()?,
                })
            }
            _ => None,
        };

        Ok(PaqlQuery {
            package_alias,
            relation,
            relation_alias,
            repeat,
            where_clause,
            such_that,
            objective,
        })
    }

    // ---- scalar (base constraint) expressions ----

    fn parse_expr(&mut self) -> PaqlResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> PaqlResult<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::binary(BinaryOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> PaqlResult<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::binary(BinaryOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> PaqlResult<Expr> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> PaqlResult<Expr> {
        let lhs = self.parse_additive()?;
        // Optional negation of the following postfix predicate (x NOT IN ...).
        let negated = self.eat_keyword(Keyword::Not);
        match self.peek().cloned() {
            Some(Token::Eq) | Some(Token::NotEq) | Some(Token::Lt) | Some(Token::LtEq)
            | Some(Token::Gt) | Some(Token::GtEq)
                if !negated =>
            {
                let op = match self.advance().expect("peeked") {
                    Token::Eq => BinaryOp::Eq,
                    Token::NotEq => BinaryOp::NotEq,
                    Token::Lt => BinaryOp::Lt,
                    Token::LtEq => BinaryOp::LtEq,
                    Token::Gt => BinaryOp::Gt,
                    Token::GtEq => BinaryOp::GtEq,
                    _ => unreachable!(),
                };
                let rhs = self.parse_additive()?;
                Ok(Expr::binary(op, lhs, rhs))
            }
            Some(Token::Keyword(Keyword::Between)) => {
                self.advance();
                let low = self.parse_additive()?;
                self.expect_keyword(Keyword::And)?;
                let high = self.parse_additive()?;
                Ok(Expr::Between {
                    expr: Box::new(lhs),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                })
            }
            Some(Token::Keyword(Keyword::In)) => {
                self.advance();
                self.expect_token(&Token::LParen)?;
                let mut list = Vec::new();
                loop {
                    list.push(self.parse_additive()?);
                    if !matches!(self.peek(), Some(Token::Comma)) {
                        break;
                    }
                    self.advance();
                }
                self.expect_token(&Token::RParen)?;
                Ok(Expr::InList {
                    expr: Box::new(lhs),
                    list,
                    negated,
                })
            }
            Some(Token::Keyword(Keyword::Like)) => {
                self.advance();
                match self.advance() {
                    Some(Token::String(p)) => Ok(Expr::Like {
                        expr: Box::new(lhs),
                        pattern: p,
                        negated,
                    }),
                    _ => self.error("LIKE expects a string literal pattern"),
                }
            }
            Some(Token::Keyword(Keyword::Is)) if !negated => {
                self.advance();
                let negated = self.eat_keyword(Keyword::Not);
                self.expect_keyword(Keyword::Null)?;
                Ok(Expr::IsNull {
                    expr: Box::new(lhs),
                    negated,
                })
            }
            _ if negated => self.error("expected BETWEEN, IN or LIKE after NOT"),
            _ => Ok(lhs),
        }
    }

    fn parse_additive(&mut self) -> PaqlResult<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> PaqlResult<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> PaqlResult<Expr> {
        if matches!(self.peek(), Some(Token::Minus)) {
            self.advance();
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> PaqlResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.advance();
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    Ok(Expr::lit(n as i64))
                } else {
                    Ok(Expr::lit(n))
                }
            }
            Some(Token::String(s)) => {
                self.advance();
                Ok(Expr::lit(s.as_str()))
            }
            Some(Token::Keyword(Keyword::True)) => {
                self.advance();
                Ok(Expr::lit(true))
            }
            Some(Token::Keyword(Keyword::False)) => {
                self.advance();
                Ok(Expr::lit(false))
            }
            Some(Token::Keyword(Keyword::Null)) => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Ident(name)) => {
                self.advance();
                let full = if matches!(self.peek(), Some(Token::Dot)) {
                    self.advance();
                    let col = self.expect_ident()?;
                    format!("{name}.{col}")
                } else {
                    name
                };
                Ok(Expr::col(full))
            }
            Some(Token::LParen) => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            other => self.error(format!(
                "expected an expression, found {}",
                describe(other.as_ref())
            )),
        }
    }

    // ---- global (SUCH THAT) formulas ----

    fn parse_formula(&mut self) -> PaqlResult<GlobalFormula> {
        self.parse_formula_or()
    }

    fn parse_formula_or(&mut self) -> PaqlResult<GlobalFormula> {
        let mut lhs = self.parse_formula_and()?;
        while self.eat_keyword(Keyword::Or) {
            let rhs = self.parse_formula_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_formula_and(&mut self) -> PaqlResult<GlobalFormula> {
        let mut lhs = self.parse_formula_not()?;
        while self.eat_keyword(Keyword::And) {
            let rhs = self.parse_formula_not()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_formula_not(&mut self) -> PaqlResult<GlobalFormula> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.parse_formula_not()?;
            return Ok(GlobalFormula::Not(Box::new(inner)));
        }
        self.parse_formula_atom()
    }

    fn parse_formula_atom(&mut self) -> PaqlResult<GlobalFormula> {
        // A leading '(' is ambiguous: it can open a parenthesized formula or a
        // parenthesized global expression. Try the constraint interpretation
        // first and fall back to the formula interpretation.
        if matches!(self.peek(), Some(Token::LParen)) {
            let save = self.pos;
            if let Ok(atom) = self.parse_constraint() {
                return Ok(atom);
            }
            self.pos = save;
            self.expect_token(&Token::LParen)?;
            let inner = self.parse_formula()?;
            self.expect_token(&Token::RParen)?;
            return Ok(inner);
        }
        self.parse_constraint()
    }

    fn parse_constraint(&mut self) -> PaqlResult<GlobalFormula> {
        let lhs = self.parse_global_expr()?;
        match self.peek().cloned() {
            Some(Token::Keyword(Keyword::Between)) => {
                self.advance();
                let low = self.parse_global_expr()?;
                self.expect_keyword(Keyword::And)?;
                let high = self.parse_global_expr()?;
                // Desugar BETWEEN into lhs >= low AND lhs <= high.
                let a = GlobalFormula::Atom(GlobalConstraint {
                    lhs: lhs.clone(),
                    op: CmpOp::GtEq,
                    rhs: low,
                });
                let b = GlobalFormula::Atom(GlobalConstraint {
                    lhs,
                    op: CmpOp::LtEq,
                    rhs: high,
                });
                Ok(a.and(b))
            }
            Some(t) => {
                let op = match t {
                    Token::Eq => CmpOp::Eq,
                    Token::NotEq => CmpOp::NotEq,
                    Token::Lt => CmpOp::Lt,
                    Token::LtEq => CmpOp::LtEq,
                    Token::Gt => CmpOp::Gt,
                    Token::GtEq => CmpOp::GtEq,
                    other => {
                        return self.error(format!(
                        "expected a comparison operator or BETWEEN in SUCH THAT, found '{other}'"
                    ))
                    }
                };
                self.advance();
                let rhs = self.parse_global_expr()?;
                Ok(GlobalFormula::Atom(GlobalConstraint { lhs, op, rhs }))
            }
            None => self.error("unexpected end of input inside SUCH THAT"),
        }
    }

    fn parse_global_expr(&mut self) -> PaqlResult<GlobalExpr> {
        self.parse_global_additive()
    }

    fn parse_global_additive(&mut self) -> PaqlResult<GlobalExpr> {
        let mut lhs = self.parse_global_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => GlobalArithOp::Add,
                Some(Token::Minus) => GlobalArithOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_global_multiplicative()?;
            lhs = GlobalExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_global_multiplicative(&mut self) -> PaqlResult<GlobalExpr> {
        let mut lhs = self.parse_global_primary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => GlobalArithOp::Mul,
                Some(Token::Slash) => GlobalArithOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_global_primary()?;
            lhs = GlobalExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_global_primary(&mut self) -> PaqlResult<GlobalExpr> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.advance();
                Ok(GlobalExpr::Literal(n))
            }
            Some(Token::Minus) => {
                self.advance();
                let inner = self.parse_global_primary()?;
                Ok(GlobalExpr::Binary {
                    op: GlobalArithOp::Mul,
                    lhs: Box::new(GlobalExpr::Literal(-1.0)),
                    rhs: Box::new(inner),
                })
            }
            Some(Token::Keyword(k))
                if matches!(
                    k,
                    Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max
                ) =>
            {
                self.advance();
                let func = match k {
                    Keyword::Count => AggFunc::Count,
                    Keyword::Sum => AggFunc::Sum,
                    Keyword::Avg => AggFunc::Avg,
                    Keyword::Min => AggFunc::Min,
                    Keyword::Max => AggFunc::Max,
                    _ => unreachable!(),
                };
                self.expect_token(&Token::LParen)?;
                let arg = if matches!(self.peek(), Some(Token::Star)) {
                    self.advance();
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect_token(&Token::RParen)?;
                if arg.is_none() && func != AggFunc::Count {
                    return self.error(format!(
                        "{}(*) is not valid; only COUNT accepts '*'",
                        func.name()
                    ));
                }
                let filter = if self.eat_keyword(Keyword::Filter) {
                    self.expect_token(&Token::LParen)?;
                    self.expect_keyword(Keyword::Where)?;
                    let p = self.parse_expr()?;
                    self.expect_token(&Token::RParen)?;
                    Some(p)
                } else {
                    None
                };
                Ok(GlobalExpr::Agg(AggCall { func, arg, filter }))
            }
            Some(Token::LParen) => {
                self.advance();
                let e = self.parse_global_expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            other => self.error(format!(
                "expected an aggregate, number or '(' in SUCH THAT, found {}",
                describe(other.as_ref())
            )),
        }
    }
}

fn describe(t: Option<&Token>) -> String {
    match t {
        None => "end of input".to_string(),
        Some(t) => format!("'{t}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P \
        FROM Recipes R \
        WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
        MAXIMIZE SUM(P.protein)";

    #[test]
    fn parses_the_paper_query() {
        let q = parse(MEAL_QUERY).unwrap();
        assert_eq!(q.package_alias, "P");
        assert_eq!(q.relation, "Recipes");
        assert_eq!(q.relation_alias.as_deref(), Some("R"));
        assert_eq!(q.repeat, None);
        assert!(q.where_clause.is_some());
        let st = q.such_that.unwrap();
        // COUNT(*) = 3, SUM >= 2000, SUM <= 2500 after BETWEEN desugaring.
        assert_eq!(st.atoms().len(), 3);
        assert!(st.is_conjunctive());
        let obj = q.objective.unwrap();
        assert_eq!(obj.direction, ObjectiveDirection::Maximize);
    }

    #[test]
    fn parses_repeat_clause() {
        let q =
            parse("SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 3 SUCH THAT COUNT(*) = 5").unwrap();
        assert_eq!(q.repeat, Some(3));
        assert_eq!(q.max_multiplicity(), 3);
        assert!(parse("SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0").is_err());
        assert!(parse("SELECT PACKAGE(R) AS P FROM Recipes R REPEAT x").is_err());
    }

    #[test]
    fn parses_minimize_objective_and_no_where() {
        let q = parse(
            "SELECT PACKAGE(R) AS P FROM meals R SUCH THAT SUM(P.fat) <= 50 MINIMIZE SUM(P.price)",
        )
        .unwrap();
        assert!(q.where_clause.is_none());
        assert_eq!(q.objective.unwrap().direction, ObjectiveDirection::Minimize);
    }

    #[test]
    fn parses_filtered_aggregates_and_ratio_constraints() {
        let q = parse(
            "SELECT PACKAGE(S) AS P FROM stocks S \
             SUCH THAT SUM(P.price) <= 50000 AND \
                       SUM(P.price) FILTER (WHERE S.sector = 'tech') >= 0.3 * SUM(P.price) \
             MAXIMIZE SUM(P.expected_return)",
        )
        .unwrap();
        let st = q.such_that.unwrap();
        let atoms = st.atoms();
        assert_eq!(atoms.len(), 2);
        let filtered = &atoms[1].lhs;
        match filtered {
            GlobalExpr::Agg(call) => assert!(call.filter.is_some()),
            other => panic!("expected aggregate, got {other:?}"),
        }
        match &atoms[1].rhs {
            GlobalExpr::Binary {
                op: GlobalArithOp::Mul,
                ..
            } => {}
            other => panic!("expected product, got {other:?}"),
        }
    }

    #[test]
    fn parses_disjunctive_formulas() {
        let q = parse(
            "SELECT PACKAGE(R) AS P FROM trips R \
             SUCH THAT (SUM(P.cost) <= 2000 AND COUNT(*) = 2) OR \
                       (SUM(P.cost) <= 1500 AND COUNT(*) = 1)",
        )
        .unwrap();
        let st = q.such_that.unwrap();
        assert!(!st.is_conjunctive());
        assert_eq!(st.atoms().len(), 4);
    }

    #[test]
    fn parses_not_and_nested_parens() {
        let q = parse("SELECT PACKAGE(R) AS P FROM t R SUCH THAT NOT (COUNT(*) > 5)").unwrap();
        match q.such_that.unwrap() {
            GlobalFormula::Not(inner) => assert_eq!(inner.atoms().len(), 1),
            other => panic!("expected NOT, got {other:?}"),
        }
    }

    #[test]
    fn base_where_supports_sql_predicates() {
        let q = parse(
            "SELECT PACKAGE(R) AS P FROM Recipes R \
             WHERE R.gluten = 'free' AND R.calories BETWEEN 100 AND 900 \
               AND R.course IN ('breakfast', 'lunch') AND R.name NOT LIKE '%sugar%' \
               AND R.rating IS NOT NULL",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        let cols = w.referenced_columns();
        assert!(cols.contains(&"R.course".to_string()));
        assert!(cols.contains(&"R.rating".to_string()));
    }

    #[test]
    fn package_alias_must_reference_from_relation() {
        let err = parse("SELECT PACKAGE(X) AS P FROM Recipes R").unwrap_err();
        assert!(matches!(err, PaqlError::Semantic(_)));
        // Referencing the relation name itself (no alias) is fine.
        assert!(parse("SELECT PACKAGE(Recipes) AS P FROM Recipes").is_ok());
    }

    #[test]
    fn missing_clauses_and_trailing_garbage_error() {
        assert!(parse("SELECT PACKAGE(R) AS P").is_err());
        assert!(parse("SELECT PACKAGE(R) AS P FROM t R extra garbage").is_err());
        assert!(parse("SELECT PACKAGE(R) AS P FROM t R SUCH THAT").is_err());
        assert!(parse("SELECT PACKAGE(R) AS P FROM t R SUCH THAT SUM(*) = 3").is_err());
    }

    #[test]
    fn standalone_expression_parsers() {
        let e = parse_base_expr("calories / protein <= 30 AND gluten = 'free'").unwrap();
        assert_eq!(e.referenced_columns().len(), 3);
        let f = parse_global_formula("COUNT(*) = 3 AND SUM(calories) <= 2500").unwrap();
        assert_eq!(f.atoms().len(), 2);
        assert!(parse_base_expr("1 +").is_err());
    }

    #[test]
    fn global_expression_arithmetic_precedence() {
        let f = parse_global_formula("SUM(a) + 2 * SUM(b) <= 10").unwrap();
        let atom = f.atoms()[0].clone();
        match atom.lhs {
            GlobalExpr::Binary {
                op: GlobalArithOp::Add,
                rhs,
                ..
            } => match *rhs {
                GlobalExpr::Binary {
                    op: GlobalArithOp::Mul,
                    ..
                } => {}
                other => panic!("expected product on the right of +, got {other:?}"),
            },
            other => panic!("expected sum at the top, got {other:?}"),
        }
    }

    #[test]
    fn avg_min_max_aggregates_parse() {
        let f =
            parse_global_formula("AVG(calories) <= 700 AND MIN(protein) >= 5 AND MAX(fat) <= 40")
                .unwrap();
        assert_eq!(f.atoms().len(), 3);
    }
}
