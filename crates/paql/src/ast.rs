//! The PaQL abstract syntax tree.

use std::fmt;

use minidb::Expr;

/// Aggregate functions usable in `SUCH THAT` and objective clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — the package cardinality (counting multiplicities).
    Count,
    /// `SUM(expr)` over package members.
    Sum,
    /// `AVG(expr)` over package members.
    Avg,
    /// `MIN(expr)` over package members.
    Min,
    /// `MAX(expr)` over package members.
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// True for the aggregates that are linear functions of tuple
    /// multiplicities (COUNT and SUM); only these translate directly into
    /// ILP constraints. AVG is additionally *linearizable* when compared
    /// against a constant (the engine multiplies through by COUNT); AVG vs
    /// non-constants, AVG objectives and MIN/MAX require the search-based
    /// strategies.
    pub fn is_linear(&self) -> bool {
        matches!(self, AggFunc::Count | AggFunc::Sum)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One aggregate call, e.g. `SUM(P.calories)` or
/// `COUNT(*) FILTER (WHERE P.kind = 'flight')`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// The argument expression; `None` means `*` (only valid for COUNT).
    pub arg: Option<Expr>,
    /// Optional `FILTER (WHERE ...)` predicate restricting which package
    /// members contribute to the aggregate.
    pub filter: Option<Expr>,
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*)", self.func)?,
            Some(e) => write!(f, "{}({})", self.func, e)?,
        }
        if let Some(p) = &self.filter {
            write!(f, " FILTER (WHERE {p})")?;
        }
        Ok(())
    }
}

/// Arithmetic operators inside global expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl GlobalArithOp {
    /// Symbolic form.
    pub fn symbol(&self) -> &'static str {
        match self {
            GlobalArithOp::Add => "+",
            GlobalArithOp::Sub => "-",
            GlobalArithOp::Mul => "*",
            GlobalArithOp::Div => "/",
        }
    }
}

/// An arithmetic expression over aggregates and literals, evaluated per
/// *package* (not per tuple).
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalExpr {
    /// An aggregate over the package.
    Agg(AggCall),
    /// A numeric literal.
    Literal(f64),
    /// Arithmetic combination.
    Binary {
        /// Operator.
        op: GlobalArithOp,
        /// Left operand.
        lhs: Box<GlobalExpr>,
        /// Right operand.
        rhs: Box<GlobalExpr>,
    },
}

impl GlobalExpr {
    /// Convenience constructor for `func(column)`.
    pub fn agg(func: AggFunc, column: &str) -> GlobalExpr {
        GlobalExpr::Agg(AggCall {
            func,
            arg: Some(Expr::col(column)),
            filter: None,
        })
    }

    /// Convenience constructor for `COUNT(*)`.
    pub fn count_star() -> GlobalExpr {
        GlobalExpr::Agg(AggCall {
            func: AggFunc::Count,
            arg: None,
            filter: None,
        })
    }

    /// All aggregate calls appearing in the expression.
    pub fn aggregates(&self) -> Vec<&AggCall> {
        let mut out = Vec::new();
        self.collect_aggs(&mut out);
        out
    }

    fn collect_aggs<'a>(&'a self, out: &mut Vec<&'a AggCall>) {
        match self {
            GlobalExpr::Agg(a) => out.push(a),
            GlobalExpr::Literal(_) => {}
            GlobalExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_aggs(out);
                rhs.collect_aggs(out);
            }
        }
    }
}

impl fmt::Display for GlobalExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalExpr::Agg(a) => write!(f, "{a}"),
            GlobalExpr::Literal(x) => write!(f, "{x}"),
            GlobalExpr::Binary { op, lhs, rhs } => write!(f, "({lhs} {} {rhs})", op.symbol()),
        }
    }
}

/// Comparison operators between global expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// Symbolic form.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }

    /// Applies the comparison to two floats (used by the package evaluator).
    pub fn compare(&self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => (lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs().max(rhs.abs())),
            CmpOp::NotEq => !CmpOp::Eq.compare(lhs, rhs),
            CmpOp::Lt => lhs < rhs,
            CmpOp::LtEq => lhs <= rhs + 1e-9,
            CmpOp::Gt => lhs > rhs,
            CmpOp::GtEq => lhs >= rhs - 1e-9,
        }
    }
}

/// One global constraint: `lhs op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalConstraint {
    /// Left-hand global expression.
    pub lhs: GlobalExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand global expression.
    pub rhs: GlobalExpr,
}

impl fmt::Display for GlobalConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op.symbol(), self.rhs)
    }
}

/// The `SUCH THAT` clause: an arbitrary Boolean formula over global
/// constraints (the paper highlights this as an extension over Tiresias,
/// which "only supports conjunctive how-to queries").
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalFormula {
    /// A single constraint.
    Atom(GlobalConstraint),
    /// Conjunction.
    And(Box<GlobalFormula>, Box<GlobalFormula>),
    /// Disjunction.
    Or(Box<GlobalFormula>, Box<GlobalFormula>),
    /// Negation.
    Not(Box<GlobalFormula>),
}

impl GlobalFormula {
    /// Conjunction helper.
    pub fn and(self, other: GlobalFormula) -> GlobalFormula {
        GlobalFormula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: GlobalFormula) -> GlobalFormula {
        GlobalFormula::Or(Box::new(self), Box::new(other))
    }

    /// All atomic constraints in the formula, left to right.
    pub fn atoms(&self) -> Vec<&GlobalConstraint> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a GlobalConstraint>) {
        match self {
            GlobalFormula::Atom(c) => out.push(c),
            GlobalFormula::And(a, b) | GlobalFormula::Or(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            GlobalFormula::Not(a) => a.collect_atoms(out),
        }
    }

    /// True when the formula is a pure conjunction of atoms (no OR/NOT) —
    /// the fragment that translates directly into an ILP.
    pub fn is_conjunctive(&self) -> bool {
        match self {
            GlobalFormula::Atom(_) => true,
            GlobalFormula::And(a, b) => a.is_conjunctive() && b.is_conjunctive(),
            GlobalFormula::Or(..) | GlobalFormula::Not(_) => false,
        }
    }
}

impl fmt::Display for GlobalFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalFormula::Atom(c) => write!(f, "{c}"),
            GlobalFormula::And(a, b) => write!(f, "({a} AND {b})"),
            GlobalFormula::Or(a, b) => write!(f, "({a} OR {b})"),
            GlobalFormula::Not(a) => write!(f, "(NOT {a})"),
        }
    }
}

/// Objective direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectiveDirection {
    /// `MAXIMIZE`
    Maximize,
    /// `MINIMIZE`
    Minimize,
}

/// The optional objective clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Maximize or minimize.
    pub direction: ObjectiveDirection,
    /// The global expression to optimize.
    pub expr: GlobalExpr,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kw = match self.direction {
            ObjectiveDirection::Maximize => "MAXIMIZE",
            ObjectiveDirection::Minimize => "MINIMIZE",
        };
        write!(f, "{kw} {}", self.expr)
    }
}

/// A parsed PaQL package query.
#[derive(Debug, Clone, PartialEq)]
pub struct PaqlQuery {
    /// The package alias (`P` in `SELECT PACKAGE(R) AS P`).
    pub package_alias: String,
    /// The base relation name (`Recipes`).
    pub relation: String,
    /// The relation alias (`R`), if given.
    pub relation_alias: Option<String>,
    /// Maximum multiplicity of a tuple in the package. `None` means the
    /// default of 1 (each tuple appears at most once); `REPEAT k` allows a
    /// tuple to appear up to `k` times.
    pub repeat: Option<u32>,
    /// Base constraints (`WHERE`), evaluated per tuple.
    pub where_clause: Option<Expr>,
    /// Global constraints (`SUCH THAT`), evaluated per package.
    pub such_that: Option<GlobalFormula>,
    /// Optional objective.
    pub objective: Option<Objective>,
}

impl PaqlQuery {
    /// The effective maximum multiplicity of a tuple in the package.
    pub fn max_multiplicity(&self) -> u32 {
        self.repeat.unwrap_or(1).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_linearity_classification() {
        assert!(AggFunc::Sum.is_linear());
        assert!(AggFunc::Count.is_linear());
        assert!(!AggFunc::Avg.is_linear());
        assert!(!AggFunc::Min.is_linear());
    }

    #[test]
    fn formula_atoms_and_conjunctivity() {
        let a = GlobalFormula::Atom(GlobalConstraint {
            lhs: GlobalExpr::count_star(),
            op: CmpOp::Eq,
            rhs: GlobalExpr::Literal(3.0),
        });
        let b = GlobalFormula::Atom(GlobalConstraint {
            lhs: GlobalExpr::agg(AggFunc::Sum, "calories"),
            op: CmpOp::LtEq,
            rhs: GlobalExpr::Literal(2500.0),
        });
        let conj = a.clone().and(b.clone());
        assert!(conj.is_conjunctive());
        assert_eq!(conj.atoms().len(), 2);
        let disj = a.or(b);
        assert!(!disj.is_conjunctive());
    }

    #[test]
    fn cmp_compare_semantics() {
        assert!(CmpOp::Eq.compare(3.0, 3.0));
        assert!(CmpOp::LtEq.compare(2.0, 2.0));
        assert!(CmpOp::Lt.compare(1.0, 2.0));
        assert!(!CmpOp::Gt.compare(1.0, 2.0));
        assert!(CmpOp::NotEq.compare(1.0, 2.0));
    }

    #[test]
    fn display_round_trip_fragments() {
        let c = GlobalConstraint {
            lhs: GlobalExpr::agg(AggFunc::Sum, "P.calories"),
            op: CmpOp::GtEq,
            rhs: GlobalExpr::Literal(2000.0),
        };
        assert_eq!(c.to_string(), "SUM(P.calories) >= 2000");
        let obj = Objective {
            direction: ObjectiveDirection::Maximize,
            expr: GlobalExpr::agg(AggFunc::Sum, "P.protein"),
        };
        assert_eq!(obj.to_string(), "MAXIMIZE SUM(P.protein)");
    }

    #[test]
    fn max_multiplicity_defaults_to_one() {
        let q = PaqlQuery {
            package_alias: "P".into(),
            relation: "Recipes".into(),
            relation_alias: None,
            repeat: None,
            where_clause: None,
            such_that: None,
            objective: None,
        };
        assert_eq!(q.max_multiplicity(), 1);
        let q2 = PaqlQuery {
            repeat: Some(3),
            ..q
        };
        assert_eq!(q2.max_multiplicity(), 3);
    }
}
