//! Semantic analysis: binding a parsed query against a relation schema.

use minidb::{ColumnType, Expr, Schema};

use crate::ast::{AggCall, AggFunc, GlobalExpr, GlobalFormula, Objective, PaqlQuery};
use crate::error::PaqlError;
use crate::PaqlResult;

/// A query whose column references have been validated against a schema and
/// normalized to bare (unqualified) column names.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedQuery {
    /// The normalized query.
    pub query: PaqlQuery,
}

impl AnalyzedQuery {
    /// The normalized `WHERE` clause, if any.
    pub fn base_constraint(&self) -> Option<&Expr> {
        self.query.where_clause.as_ref()
    }

    /// The normalized `SUCH THAT` formula, if any.
    pub fn global_formula(&self) -> Option<&GlobalFormula> {
        self.query.such_that.as_ref()
    }

    /// The normalized objective, if any.
    pub fn objective(&self) -> Option<&Objective> {
        self.query.objective.as_ref()
    }
}

/// Validates `query` against `schema` and rewrites qualified column
/// references (`R.calories`, `P.calories`) to bare names.
pub fn analyze(query: &PaqlQuery, schema: &Schema) -> PaqlResult<AnalyzedQuery> {
    let binder = Binder::new(query, schema);

    let mut normalized = query.clone();
    if let Some(w) = &query.where_clause {
        normalized.where_clause = Some(binder.bind_expr(w, "WHERE")?);
    }
    if let Some(st) = &query.such_that {
        normalized.such_that = Some(binder.bind_formula(st)?);
    }
    if let Some(obj) = &query.objective {
        normalized.objective = Some(Objective {
            direction: obj.direction,
            expr: binder.bind_global_expr(&obj.expr, "objective")?,
        });
    }
    Ok(AnalyzedQuery { query: normalized })
}

struct Binder<'a> {
    schema: &'a Schema,
    valid_qualifiers: Vec<String>,
}

impl<'a> Binder<'a> {
    fn new(query: &PaqlQuery, schema: &'a Schema) -> Self {
        let mut valid_qualifiers = vec![
            query.package_alias.to_ascii_lowercase(),
            query.relation.to_ascii_lowercase(),
        ];
        if let Some(a) = &query.relation_alias {
            valid_qualifiers.push(a.to_ascii_lowercase());
        }
        Binder {
            schema,
            valid_qualifiers,
        }
    }

    /// Resolves one (possibly qualified) column name to a bare schema column.
    fn bind_column(&self, name: &str, ctx: &str) -> PaqlResult<String> {
        let (qualifier, bare) = match name.split_once('.') {
            Some((q, b)) => (Some(q), b),
            None => (None, name),
        };
        if let Some(q) = qualifier {
            if !self.valid_qualifiers.contains(&q.to_ascii_lowercase()) {
                return Err(PaqlError::Semantic(format!(
                    "unknown alias '{q}' in {ctx}: '{name}' (valid aliases: {})",
                    self.valid_qualifiers.join(", ")
                )));
            }
        }
        let col = self.schema.column(bare).ok_or_else(|| {
            PaqlError::Semantic(format!(
                "unknown column '{bare}' in {ctx}; available columns: {}",
                self.schema
                    .columns()
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        Ok(col.name.clone())
    }

    fn bind_expr(&self, expr: &Expr, ctx: &str) -> PaqlResult<Expr> {
        // First validate every referenced column, then rewrite them to bare names.
        for c in expr.referenced_columns() {
            self.bind_column(&c, ctx)?;
        }
        let schema = self.schema;
        let rewritten = expr.map_columns(&|name: &str| {
            let bare = name.split_once('.').map(|(_, b)| b).unwrap_or(name);
            schema
                .column(bare)
                .map(|c| c.name.clone())
                .unwrap_or_else(|| bare.to_string())
        });
        Ok(rewritten)
    }

    fn bind_agg(&self, call: &AggCall, ctx: &str) -> PaqlResult<AggCall> {
        let arg = match &call.arg {
            None => {
                if call.func != AggFunc::Count {
                    return Err(PaqlError::Semantic(format!(
                        "{}(*) is not valid in {ctx}; only COUNT accepts '*'",
                        call.func.name()
                    )));
                }
                None
            }
            Some(e) => {
                let bound = self.bind_expr(e, ctx)?;
                // SUM/AVG need a numeric argument; a bare text column is a
                // type error we can detect statically.
                if matches!(call.func, AggFunc::Sum | AggFunc::Avg) {
                    if let Expr::Column(c) = &bound {
                        if let Some(col) = self.schema.column(c) {
                            if col.ty == ColumnType::Text {
                                return Err(PaqlError::Semantic(format!(
                                    "{}({c}) in {ctx}: column '{c}' is TEXT, expected a numeric expression",
                                    call.func.name()
                                )));
                            }
                        }
                    }
                }
                Some(bound)
            }
        };
        let filter = match &call.filter {
            None => None,
            Some(p) => Some(self.bind_expr(p, &format!("{ctx} FILTER"))?),
        };
        Ok(AggCall {
            func: call.func,
            arg,
            filter,
        })
    }

    fn bind_global_expr(&self, expr: &GlobalExpr, ctx: &str) -> PaqlResult<GlobalExpr> {
        Ok(match expr {
            GlobalExpr::Agg(call) => GlobalExpr::Agg(self.bind_agg(call, ctx)?),
            GlobalExpr::Literal(x) => GlobalExpr::Literal(*x),
            GlobalExpr::Binary { op, lhs, rhs } => GlobalExpr::Binary {
                op: *op,
                lhs: Box::new(self.bind_global_expr(lhs, ctx)?),
                rhs: Box::new(self.bind_global_expr(rhs, ctx)?),
            },
        })
    }

    fn bind_formula(&self, formula: &GlobalFormula) -> PaqlResult<GlobalFormula> {
        Ok(match formula {
            GlobalFormula::Atom(c) => GlobalFormula::Atom(crate::ast::GlobalConstraint {
                lhs: self.bind_global_expr(&c.lhs, "SUCH THAT")?,
                op: c.op,
                rhs: self.bind_global_expr(&c.rhs, "SUCH THAT")?,
            }),
            GlobalFormula::And(a, b) => GlobalFormula::And(
                Box::new(self.bind_formula(a)?),
                Box::new(self.bind_formula(b)?),
            ),
            GlobalFormula::Or(a, b) => GlobalFormula::Or(
                Box::new(self.bind_formula(a)?),
                Box::new(self.bind_formula(b)?),
            ),
            GlobalFormula::Not(a) => GlobalFormula::Not(Box::new(self.bind_formula(a)?)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use minidb::ColumnType;

    fn recipe_schema() -> Schema {
        Schema::build(&[
            ("name", ColumnType::Text),
            ("calories", ColumnType::Float),
            ("protein", ColumnType::Float),
            ("gluten", ColumnType::Text),
        ])
    }

    #[test]
    fn binds_and_normalizes_the_paper_query() {
        let q = parse(
            "SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.gluten = 'free' \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
             MAXIMIZE SUM(P.protein)",
        )
        .unwrap();
        let a = analyze(&q, &recipe_schema()).unwrap();
        // Qualifiers are stripped.
        let w = a.base_constraint().unwrap();
        assert_eq!(w.referenced_columns(), vec!["gluten".to_string()]);
        let atoms = a.global_formula().unwrap().atoms();
        match &atoms[1].lhs {
            GlobalExpr::Agg(call) => {
                assert_eq!(
                    call.arg.as_ref().unwrap().referenced_columns(),
                    vec!["calories".to_string()]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_column_is_reported_with_candidates() {
        let q = parse("SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.sugar > 10").unwrap();
        let err = analyze(&q, &recipe_schema()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("sugar"));
        assert!(
            msg.contains("calories"),
            "should list available columns: {msg}"
        );
    }

    #[test]
    fn unknown_alias_is_rejected() {
        let q = parse("SELECT PACKAGE(R) AS P FROM Recipes R WHERE X.calories > 10").unwrap();
        let err = analyze(&q, &recipe_schema()).unwrap_err();
        assert!(err.to_string().contains("unknown alias 'X'"));
    }

    #[test]
    fn sum_over_text_column_is_a_type_error() {
        let q = parse("SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.name) <= 5").unwrap();
        let err = analyze(&q, &recipe_schema()).unwrap_err();
        assert!(err.to_string().contains("TEXT"));
    }

    #[test]
    fn filters_are_bound_too() {
        let q = parse(
            "SELECT PACKAGE(R) AS P FROM Recipes R \
             SUCH THAT SUM(P.calories) FILTER (WHERE R.glutenz = 'free') <= 100",
        )
        .unwrap();
        assert!(analyze(&q, &recipe_schema()).is_err());
    }

    #[test]
    fn objective_columns_are_validated() {
        let q = parse("SELECT PACKAGE(R) AS P FROM Recipes R MAXIMIZE SUM(P.proteinz)").unwrap();
        assert!(analyze(&q, &recipe_schema()).is_err());
    }
}
