//! Tokens produced by the PaQL lexer.

use std::fmt;

/// Keywords recognized by PaQL (a superset of the SQL keywords used by the
/// paper's examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    Package,
    As,
    From,
    Repeat,
    Where,
    Such,
    That,
    And,
    Or,
    Not,
    Between,
    In,
    Is,
    Null,
    Like,
    Maximize,
    Minimize,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Filter,
    True,
    False,
}

impl Keyword {
    /// Parses a keyword from an identifier-looking word (case-insensitive).
    pub fn from_word(word: &str) -> Option<Keyword> {
        let w = word.to_ascii_uppercase();
        Some(match w.as_str() {
            "SELECT" => Keyword::Select,
            "PACKAGE" => Keyword::Package,
            "AS" => Keyword::As,
            "FROM" => Keyword::From,
            "REPEAT" => Keyword::Repeat,
            "WHERE" => Keyword::Where,
            "SUCH" => Keyword::Such,
            "THAT" => Keyword::That,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "BETWEEN" => Keyword::Between,
            "IN" => Keyword::In,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "LIKE" => Keyword::Like,
            "MAXIMIZE" => Keyword::Maximize,
            "MINIMIZE" => Keyword::Minimize,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "AVG" => Keyword::Avg,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "FILTER" => Keyword::Filter,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            _ => return None,
        })
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword.
    Keyword(Keyword),
    /// An identifier (table, alias or column name, possibly later qualified).
    Ident(String),
    /// A numeric literal.
    Number(f64),
    /// A single-quoted string literal.
    String(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
        }
    }
}

/// A token together with its byte offset in the source text, used for error
/// reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(Keyword::from_word("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("Package"), Some(Keyword::Package));
        assert_eq!(Keyword::from_word("MAXIMIZE"), Some(Keyword::Maximize));
        assert_eq!(Keyword::from_word("recipes"), None);
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::LtEq.to_string(), "<=");
        assert_eq!(Token::String("free".into()).to_string(), "'free'");
    }
}
