//! `paql` — the Package Query Language.
//!
//! PaQL is "a declarative SQL-based package query language" (paper Section 2).
//! The canonical example, the athlete's daily meal plan, reads:
//!
//! ```text
//! SELECT PACKAGE(R) AS P
//! FROM Recipes R
//! WHERE R.gluten = 'free'
//! SUCH THAT COUNT(*) = 3 AND
//!           SUM(P.calories) BETWEEN 2000 AND 2500
//! MAXIMIZE SUM(P.protein)
//! ```
//!
//! This crate provides:
//!
//! * a [`lexer`] and recursive-descent [`parser`] producing the [`ast`],
//! * an [`analyzer`] that binds column references against a
//!   [`minidb::Schema`] and type-checks aggregates,
//! * a [`pretty`] module that round-trips queries back to PaQL text and
//!   renders the natural-language constraint descriptions shown in the
//!   PackageBuilder interface (Figure 1),
//! * span-carrying [`error::PaqlError`] diagnostics.
//!
//! Extensions relative to the demo paper (documented in `DESIGN.md`):
//!
//! * `FILTER (WHERE <predicate>)` on aggregates in the `SUCH THAT` and
//!   objective clauses. The paper's own intro scenarios (portfolio: "at least
//!   30% of the assets in technology") need conditional aggregates, and they
//!   stay linear, so the ILP translation still applies.
//! * Both sides of a global comparison may be arithmetic combinations of
//!   aggregates and literals (again needed for the 30%-of-total constraint).
//!
//! Restrictions relative to the full PaQL described online: a single relation
//! in `FROM`, and no sub-queries in `SUCH THAT`.

pub mod analyzer;
pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use analyzer::{analyze, AnalyzedQuery};
pub use ast::{
    AggCall, AggFunc, CmpOp, GlobalConstraint, GlobalExpr, GlobalFormula, Objective,
    ObjectiveDirection, PaqlQuery,
};
pub use error::PaqlError;
pub use parser::parse;

/// Result alias for PaQL operations.
pub type PaqlResult<T> = std::result::Result<T, PaqlError>;

/// Parses and analyzes a query against a schema in one call.
pub fn compile(text: &str, schema: &minidb::Schema) -> PaqlResult<AnalyzedQuery> {
    let query = parse(text)?;
    analyze(&query, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{ColumnType, Schema};

    #[test]
    fn compile_the_paper_query() {
        let schema = Schema::build(&[
            ("name", ColumnType::Text),
            ("calories", ColumnType::Float),
            ("protein", ColumnType::Float),
            ("gluten", ColumnType::Text),
        ]);
        let q = compile(
            "SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.gluten = 'free' \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
             MAXIMIZE SUM(P.protein)",
            &schema,
        )
        .unwrap();
        assert_eq!(q.query.relation, "Recipes");
        assert!(q.query.where_clause.is_some());
        assert!(q.query.objective.is_some());
    }
}
