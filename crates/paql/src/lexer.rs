//! The PaQL lexer.

use crate::error::PaqlError;
use crate::token::{Keyword, SpannedToken, Token};
use crate::PaqlResult;

/// Tokenizes PaQL source text.
pub fn tokenize(source: &str) -> PaqlResult<Vec<SpannedToken>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        // Decode the character at `i` properly so multi-byte UTF-8 input is
        // either tokenized (inside string literals) or rejected with a clean
        // error instead of a slicing panic.
        let c = source[i..]
            .chars()
            .next()
            .expect("i is always on a char boundary");
        let start = i;
        match c {
            c if c.is_whitespace() => {
                i += c.len_utf8();
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // SQL line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(SpannedToken {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(SpannedToken {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(SpannedToken {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(SpannedToken {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(SpannedToken {
                    token: Token::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(SpannedToken {
                    token: Token::Minus,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(SpannedToken {
                    token: Token::Star,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(SpannedToken {
                    token: Token::Slash,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(SpannedToken {
                    token: Token::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(SpannedToken {
                        token: Token::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(PaqlError::Lex {
                        message: "unexpected character '!'".into(),
                        offset: start,
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(SpannedToken {
                        token: Token::LtEq,
                        offset: start,
                    });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(SpannedToken {
                        token: Token::NotEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(SpannedToken {
                        token: Token::GtEq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(SpannedToken {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '\'' | '\u{2018}' | '\u{2019}' => {
                // String literal; accept typographic quotes too (the paper's
                // PDF uses them in the example query).
                let quote_len = c.len_utf8();
                let mut j = i + quote_len;
                let mut value = String::new();
                let mut closed = false;
                while j < bytes.len() {
                    let rest = &source[j..];
                    let ch = rest.chars().next().expect("non-empty remainder");
                    if ch == '\'' || ch == '\u{2018}' || ch == '\u{2019}' {
                        // Doubled straight quote escapes a quote.
                        if ch == '\'' && rest[ch.len_utf8()..].starts_with('\'') {
                            value.push('\'');
                            j += 2;
                            continue;
                        }
                        closed = true;
                        j += ch.len_utf8();
                        break;
                    }
                    value.push(ch);
                    j += ch.len_utf8();
                }
                if !closed {
                    return Err(PaqlError::Lex {
                        message: "unterminated string literal".into(),
                        offset: start,
                    });
                }
                tokens.push(SpannedToken {
                    token: Token::String(value),
                    offset: start,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut saw_dot = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() {
                        j += 1;
                    } else if d == '.'
                        && !saw_dot
                        && j + 1 < bytes.len()
                        && (bytes[j + 1] as char).is_ascii_digit()
                    {
                        saw_dot = true;
                        j += 1;
                    } else if d == '_' {
                        j += 1; // allow 2_000 style separators
                    } else {
                        break;
                    }
                }
                let raw: String = source[i..j].chars().filter(|&c| c != '_').collect();
                let value: f64 = raw.parse().map_err(|_| PaqlError::Lex {
                    message: format!("invalid numeric literal '{raw}'"),
                    offset: start,
                })?;
                tokens.push(SpannedToken {
                    token: Token::Number(value),
                    offset: start,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let d = source[j..]
                        .chars()
                        .next()
                        .expect("j stays on char boundaries");
                    if d.is_alphanumeric() || d == '_' {
                        j += d.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &source[i..j];
                let token = match Keyword::from_word(word) {
                    Some(k) => Token::Keyword(k),
                    None => Token::Ident(word.to_string()),
                };
                tokens.push(SpannedToken {
                    token,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(PaqlError::Lex {
                    message: format!("unexpected character '{other}'"),
                    offset: start,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn tokenizes_the_paper_query() {
        let toks = kinds(
            "SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.gluten = 'free' \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
             MAXIMIZE SUM(P.protein)",
        );
        assert!(toks.contains(&Token::Keyword(Keyword::Package)));
        assert!(toks.contains(&Token::String("free".into())));
        assert!(toks.contains(&Token::Number(2000.0)));
        assert!(toks.contains(&Token::Star));
    }

    #[test]
    fn numbers_with_underscores_and_decimals() {
        assert_eq!(
            kinds("2_000 12.5"),
            vec![Token::Number(2000.0), Token::Number(12.5)]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("<= >= <> != < > ="),
            vec![
                Token::LtEq,
                Token::GtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::Gt,
                Token::Eq
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_unterminated() {
        assert_eq!(kinds("'it''s'"), vec![Token::String("it's".into())]);
        assert!(matches!(tokenize("'oops"), Err(PaqlError::Lex { .. })));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- comment\n2"),
            vec![Token::Number(1.0), Token::Number(2.0)]
        );
    }

    #[test]
    fn offsets_are_recorded() {
        let toks = tokenize("SELECT  PACKAGE").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 8);
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(matches!(tokenize("a ; b"), Err(PaqlError::Lex { .. })));
    }
}
