//! Pretty-printing and natural-language rendering.
//!
//! The PackageBuilder interface shows "natural language descriptions" of
//! constraints next to the package template (Figure 1). This module provides
//! both a PaQL round-trip printer (so interface edits can be re-parsed) and
//! the English rendering of base constraints, global constraints and
//! objectives.

use std::fmt::Write as _;

use minidb::Expr;

use crate::ast::{
    AggCall, AggFunc, CmpOp, GlobalConstraint, GlobalExpr, GlobalFormula, Objective,
    ObjectiveDirection, PaqlQuery,
};

/// Renders a query back to PaQL text. The output parses back to an
/// equivalent query (`parse(to_paql(q)) == q` modulo BETWEEN desugaring).
pub fn to_paql(query: &PaqlQuery) -> String {
    let mut s = String::new();
    let target = query
        .relation_alias
        .clone()
        .unwrap_or_else(|| query.relation.clone());
    write!(s, "SELECT PACKAGE({target}) AS {}", query.package_alias).unwrap();
    write!(s, " FROM {}", query.relation).unwrap();
    if let Some(a) = &query.relation_alias {
        write!(s, " {a}").unwrap();
    }
    if let Some(k) = query.repeat {
        write!(s, " REPEAT {k}").unwrap();
    }
    if let Some(w) = &query.where_clause {
        write!(s, " WHERE {w}").unwrap();
    }
    if let Some(st) = &query.such_that {
        write!(s, " SUCH THAT {st}").unwrap();
    }
    if let Some(o) = &query.objective {
        write!(s, " {o}").unwrap();
    }
    s
}

/// English description of a whole query, one sentence per clause.
pub fn describe_query(query: &PaqlQuery) -> String {
    let mut lines = Vec::new();
    lines.push(format!(
        "Build a package of tuples from '{}'{}.",
        query.relation,
        match query.repeat {
            None => String::new(),
            Some(1) => String::new(),
            Some(k) => format!(", where each tuple may appear up to {k} times"),
        }
    ));
    if let Some(w) = &query.where_clause {
        lines.push(format!(
            "Every tuple in the package must satisfy: {}.",
            describe_expr(w)
        ));
    }
    if let Some(st) = &query.such_that {
        lines.push(format!(
            "Together, the package must satisfy: {}.",
            describe_formula(st)
        ));
    }
    if let Some(o) = &query.objective {
        lines.push(format!("{}.", describe_objective(o)));
    }
    lines.join("\n")
}

/// English rendering of a base (per-tuple) constraint.
pub fn describe_expr(expr: &Expr) -> String {
    // Base constraints read naturally in their SQL form once qualifiers are
    // stripped; keep the SQL text but drop the outermost parentheses.
    let s = expr.to_string();
    s.trim_start_matches('(').trim_end_matches(')').to_string()
}

/// English rendering of an aggregate call.
pub fn describe_agg(call: &AggCall) -> String {
    let quantity = match (&call.func, &call.arg) {
        (AggFunc::Count, _) => "the number of tuples".to_string(),
        (AggFunc::Sum, Some(e)) => format!("the total {}", describe_arg(e)),
        (AggFunc::Avg, Some(e)) => format!("the average {}", describe_arg(e)),
        (AggFunc::Min, Some(e)) => format!("the smallest {}", describe_arg(e)),
        (AggFunc::Max, Some(e)) => format!("the largest {}", describe_arg(e)),
        (f, None) => format!("{}(*)", f.name()),
    };
    match &call.filter {
        None => quantity,
        Some(p) => format!("{quantity} among tuples where {}", describe_expr(p)),
    }
}

fn describe_arg(expr: &Expr) -> String {
    match expr {
        Expr::Column(c) => c.clone(),
        other => other.to_string(),
    }
}

/// English rendering of a global expression.
pub fn describe_global_expr(expr: &GlobalExpr) -> String {
    match expr {
        GlobalExpr::Agg(a) => describe_agg(a),
        GlobalExpr::Literal(x) => format_number(*x),
        GlobalExpr::Binary { op, lhs, rhs } => format!(
            "{} {} {}",
            describe_global_expr(lhs),
            op.symbol(),
            describe_global_expr(rhs)
        ),
    }
}

/// English rendering of one global constraint.
pub fn describe_constraint(c: &GlobalConstraint) -> String {
    let lhs = describe_global_expr(&c.lhs);
    let rhs = describe_global_expr(&c.rhs);
    let verb = match c.op {
        CmpOp::Eq => "must be exactly",
        CmpOp::NotEq => "must differ from",
        CmpOp::Lt => "must be less than",
        CmpOp::LtEq => "must be at most",
        CmpOp::Gt => "must be more than",
        CmpOp::GtEq => "must be at least",
    };
    format!("{lhs} {verb} {rhs}")
}

/// English rendering of a global formula.
pub fn describe_formula(formula: &GlobalFormula) -> String {
    match formula {
        GlobalFormula::Atom(c) => describe_constraint(c),
        GlobalFormula::And(a, b) => format!("{}, and {}", describe_formula(a), describe_formula(b)),
        GlobalFormula::Or(a, b) => {
            format!("either {} or {}", describe_formula(a), describe_formula(b))
        }
        GlobalFormula::Not(a) => format!("it is not the case that {}", describe_formula(a)),
    }
}

/// English rendering of the objective.
pub fn describe_objective(obj: &Objective) -> String {
    // "the largest the total protein" reads badly; drop a leading article
    // from the quantity description.
    let quantity = describe_global_expr(&obj.expr);
    let quantity = quantity.strip_prefix("the ").unwrap_or(&quantity);
    match obj.direction {
        ObjectiveDirection::Maximize => {
            format!("Among valid packages, prefer those with the largest {quantity}")
        }
        ObjectiveDirection::Minimize => {
            format!("Among valid packages, prefer those with the smallest {quantity}")
        }
    }
}

fn format_number(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
        MAXIMIZE SUM(P.protein)";

    #[test]
    fn paql_round_trips_through_the_printer() {
        let q = parse(MEAL_QUERY).unwrap();
        let printed = to_paql(&q);
        let q2 = parse(&printed).unwrap();
        assert_eq!(q, q2, "printed query was: {printed}");
    }

    #[test]
    fn describes_the_meal_query_in_english() {
        let q = parse(MEAL_QUERY).unwrap();
        let text = describe_query(&q);
        assert!(text.contains("Build a package of tuples from 'Recipes'"));
        assert!(text.contains("the number of tuples must be exactly 3"));
        assert!(text.contains("the total P.calories must be at least 2000"));
        assert!(text.contains("prefer those with the largest total P.protein"));
    }

    #[test]
    fn describes_filters_and_disjunctions() {
        let q = parse(
            "SELECT PACKAGE(S) AS P FROM stocks S \
             SUCH THAT SUM(P.price) FILTER (WHERE S.sector = 'tech') >= 15000 \
                OR COUNT(*) = 0",
        )
        .unwrap();
        let text = describe_formula(q.such_that.as_ref().unwrap());
        assert!(text.contains("among tuples where"));
        assert!(text.starts_with("either "));
    }

    #[test]
    fn describes_repeat_and_minimize() {
        let q =
            parse("SELECT PACKAGE(R) AS P FROM meals R REPEAT 2 MINIMIZE SUM(P.price)").unwrap();
        let text = describe_query(&q);
        assert!(text.contains("up to 2 times"));
        assert!(text.contains("smallest total P.price"));
    }

    #[test]
    fn number_formatting_drops_trailing_zero() {
        assert_eq!(format_number(2000.0), "2000");
        assert_eq!(format_number(0.3), "0.3");
    }
}
