//! PaQL errors with source positions.

use std::fmt;

/// Errors produced while lexing, parsing or analyzing PaQL.
#[derive(Debug, Clone, PartialEq)]
pub enum PaqlError {
    /// Lexical error (unexpected character, unterminated string, ...).
    Lex {
        /// Description.
        message: String,
        /// Byte offset in the source.
        offset: usize,
    },
    /// Syntax error.
    Parse {
        /// Description (expected vs found).
        message: String,
        /// Byte offset in the source.
        offset: usize,
    },
    /// Semantic error found while binding the query against a schema.
    Semantic(String),
}

impl PaqlError {
    /// Renders the error with a caret pointing into `source`.
    pub fn render(&self, source: &str) -> String {
        match self {
            PaqlError::Semantic(m) => format!("semantic error: {m}"),
            PaqlError::Lex { message, offset } | PaqlError::Parse { message, offset } => {
                let kind = if matches!(self, PaqlError::Lex { .. }) {
                    "lexical"
                } else {
                    "syntax"
                };
                let offset = (*offset).min(source.len());
                let before = &source[..offset];
                let line_no = before.matches('\n').count() + 1;
                let line_start = before.rfind('\n').map(|i| i + 1).unwrap_or(0);
                let line_end = source[offset..]
                    .find('\n')
                    .map(|i| offset + i)
                    .unwrap_or(source.len());
                let col = offset - line_start;
                let line = &source[line_start..line_end];
                format!(
                    "{kind} error at line {line_no}, column {}: {message}\n  {line}\n  {}^",
                    col + 1,
                    " ".repeat(col)
                )
            }
        }
    }
}

impl fmt::Display for PaqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaqlError::Lex { message, offset } => {
                write!(f, "lexical error at offset {offset}: {message}")
            }
            PaqlError::Parse { message, offset } => {
                write!(f, "syntax error at offset {offset}: {message}")
            }
            PaqlError::Semantic(m) => write!(f, "semantic error: {m}"),
        }
    }
}

impl std::error::Error for PaqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_offending_column() {
        let src = "SELECT PACKAGE(R) AS P\nFROM Recipes R WHERE ???";
        let err = PaqlError::Parse {
            message: "unexpected token".into(),
            offset: src.find("???").unwrap(),
        };
        let rendered = err.render(src);
        assert!(rendered.contains("line 2"));
        assert!(rendered.contains('^'));
        assert!(rendered.contains("unexpected token"));
    }

    #[test]
    fn display_formats() {
        let e = PaqlError::Semantic("unknown column 'x'".into());
        assert_eq!(e.to_string(), "semantic error: unknown column 'x'");
    }
}
