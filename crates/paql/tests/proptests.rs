//! Property-based tests for the PaQL front end.

use paql::{parse, parser, pretty};
use proptest::prelude::*;

/// Strategy producing syntactically valid PaQL queries from a small grammar.
fn paql_query_strategy() -> impl Strategy<Value = String> {
    let column = prop_oneof![
        Just("calories"),
        Just("protein"),
        Just("fat"),
        Just("price")
    ];
    let agg = prop_oneof![Just("SUM"), Just("AVG"), Just("MIN"), Just("MAX")];
    (
        column,
        agg,
        1u32..6,
        0.0f64..1000.0,
        1.0f64..1000.0,
        prop::bool::ANY,
        prop::option::of(1u32..4),
    )
        .prop_map(|(col, agg, count, lo, width, maximize, repeat)| {
            let repeat = repeat.map(|k| format!(" REPEAT {k}")).unwrap_or_default();
            let dir = if maximize { "MAXIMIZE" } else { "MINIMIZE" };
            format!(
                "SELECT PACKAGE(R) AS P FROM recipes R{repeat} WHERE R.gluten = 'free' \
                 SUCH THAT COUNT(*) = {count} AND {agg}(P.{col}) BETWEEN {lo:.2} AND {:.2} \
                 {dir} SUM(P.{col})",
                lo + width
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// The lexer and parser never panic on arbitrary input — they either parse
    /// or return an error value.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,120}") {
        let _ = parse(&input);
        let _ = parser::parse_base_expr(&input);
        let _ = parser::parse_global_formula(&input);
    }

    /// Grammar-generated queries always parse, and pretty-printing them
    /// re-parses to the same AST.
    #[test]
    fn generated_queries_parse_and_round_trip(q in paql_query_strategy()) {
        let parsed = parse(&q).expect("generated query must parse");
        let printed = pretty::to_paql(&parsed);
        let reparsed = parse(&printed).expect("printed query must re-parse");
        prop_assert_eq!(parsed, reparsed, "printed: {}", printed);
    }

    /// The natural-language description mentions the aggregate column of the
    /// objective and never panics.
    #[test]
    fn descriptions_cover_the_objective(q in paql_query_strategy()) {
        let parsed = parse(&q).unwrap();
        let text = pretty::describe_query(&parsed);
        prop_assert!(text.contains("Build a package"));
        if let Some(obj) = &parsed.objective {
            let col = match &obj.expr {
                paql::GlobalExpr::Agg(call) => call.arg.as_ref().map(|e| e.to_string()),
                _ => None,
            };
            if let Some(col) = col {
                prop_assert!(text.contains(col.trim_matches(|c| c == '(' || c == ')')),
                    "description does not mention the objective column: {}", text);
            }
        }
    }

    /// Numeric literals survive the parse → print → parse cycle with their
    /// values intact (checked through the BETWEEN bounds).
    #[test]
    fn numeric_literals_round_trip(lo in 0.0f64..10_000.0, width in 0.5f64..10_000.0) {
        let q = format!(
            "SELECT PACKAGE(R) AS P FROM t R SUCH THAT SUM(P.x) BETWEEN {lo} AND {}",
            lo + width
        );
        let parsed = parse(&q).unwrap();
        let atoms = parsed.such_that.as_ref().unwrap().atoms();
        prop_assert_eq!(atoms.len(), 2);
        match (&atoms[0].rhs, &atoms[1].rhs) {
            (paql::GlobalExpr::Literal(a), paql::GlobalExpr::Literal(b)) => {
                prop_assert!((a - lo).abs() < 1e-9 * (1.0 + lo.abs()));
                prop_assert!((b - (lo + width)).abs() < 1e-9 * (1.0 + (lo + width).abs()));
            }
            other => prop_assert!(false, "unexpected bounds: {:?}", other),
        }
    }
}
