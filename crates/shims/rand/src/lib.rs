//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random_range`, `seq::SliceRandom::shuffle`
//! and `seq::IndexedRandom::choose` — with `rand 0.9` names and semantics.
//! The generator is xoshiro256** seeded through SplitMix64; it is
//! deterministic per seed, which is all the engine's tests and benchmarks
//! rely on. Swap this path dependency for the real crate once a registry is
//! reachable; no call site should need to change.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand 0.9`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * sample_unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * sample_unit_f64(rng)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** (Blackman/Vigna),
    /// seeded via SplitMix64. Statistically strong, tiny, and — unlike the
    /// real `StdRng` — guaranteed stable across shim versions, which keeps
    /// seeded tests reproducible.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..2000).map(|_| rng.random_range(0.0f64..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        assert!(samples.iter().any(|&x| x < 0.1));
        assert!(samples.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 50-element shuffle virtually never fixes everything"
        );
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<usize> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
