//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a crates registry, so this shim keeps
//! the workspace's `[[bench]]` targets (`harness = false`) compiling and
//! running: it implements `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is deliberately
//! simple — per-sample wall-clock timing with the median reported — because
//! the repository's authoritative numbers come from the `harness` binary, not
//! from these targets. Swap the path dependency for real criterion to get the
//! full statistics engine; no bench source should need to change.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        report(&self.name, &label, &mut bencher.samples);
        self
    }

    /// Runs one benchmark that receives an input by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_benchmark_id();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher, input);
        }
        report(&self.name, &label, &mut bencher.samples);
        self
    }

    /// Ends the group (parity with real criterion; nothing to flush here).
    pub fn finish(&mut self) {}
}

fn report(group: &str, label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("  {group}/{label}: no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "  {group}/{label}: median {:.3} ms (min {:.3}, max {:.3}, {} samples)",
        median.as_secs_f64() * 1e3,
        lo.as_secs_f64() * 1e3,
        hi.as_secs_f64() * 1e3,
        samples.len()
    );
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (criterion would run a calibrated
    /// batch; one timed call per sample is enough for this shim's purpose).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        black_box(out);
    }
}

/// A parameterized benchmark label (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Conversion into a printable benchmark label.
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a group of benchmark functions (signature-compatible with
/// criterion's macro; config arms are accepted and the config ignored).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Emits the `main` that runs declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_time_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0usize;
        group.sample_size(3).bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group
            .bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
                b.iter(|| black_box(n * 2))
            })
            .finish();
        assert_eq!(runs, 3);
    }
}
