//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates registry, so this shim
//! re-implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range / tuple /
//! `Just` / `prop_oneof!` / collection / option / simple-regex strategies,
//! and the `prop_assert*` macros. Cases are generated from a fixed seed (or
//! `PROPTEST_SEED`) so failures reproduce; there is **no shrinking** — a
//! failing case reports its inputs via the assertion message instead.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{any, Just, Strategy};

/// Runner configuration (field-compatible with the real
/// `ProptestConfig { cases, .. }` usage pattern).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Unused compatibility field (the real crate limits shrink iterations).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case (carried through `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Drives the random cases of one property.
pub struct TestRunner {
    cases: u32,
    rng: StdRng,
}

impl TestRunner {
    /// Builds a runner from a config, seeding from `PROPTEST_SEED` when set.
    pub fn new(config: &ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x5EED_CA5E_5EED_CA5E);
        TestRunner {
            cases: config.cases,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// How many cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The case generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Namespaced strategies, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Uniformly random booleans (mirrors `proptest::bool::ANY`).
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }

    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
    }

    /// Option strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

/// The prelude the tests import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Runs a block of property tests: an optional
/// `#![proptest_config(..)]` header followed by `fn name(pat in strategy, ..)`
/// items, each expanded to a `#[test]` that runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(&config);
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property '{}' failed on case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
