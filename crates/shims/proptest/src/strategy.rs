//! Value-generation strategies for the proptest shim.
//!
//! A [`Strategy`] draws one value per case from the runner's seeded RNG.
//! There is no shrinking: generation is a single forward pass, which keeps
//! the shim tiny while preserving the coverage the workspace's properties
//! need.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// Something that can generate values for property cases.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy behind `dyn Strategy` (used by [`crate::prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies of one value type.
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over `arms` (must be non-empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical strategy (only what the workspace needs).
pub trait ArbitraryValue: Sized {
    /// Draws one canonical value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random_range(0u32..2) == 1
    }
}

/// The result of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform booleans (mirrors `proptest::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        bool::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Element-count specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// `prop::collection::vec(element, size)`.
pub fn collection_vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`collection_vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.random_range(self.size.lo..self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::option::of(strategy)` — `None` half the time.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The result of [`option_of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if bool::arbitrary(rng) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal regex string strategies: `&str` patterns like "[a-z]{0,10}" or
// ".{0,120}" generate matching strings, which is the only regex shape the
// workspace's tests use (a single char-class atom with a repetition count).
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (alphabet, lo, hi) = parse_simple_pattern(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
        let n = rng.random_range(lo..=hi);
        (0..n)
            .map(|_| alphabet[rng.random_range(0..alphabet.len())])
            .collect()
    }
}

/// Parses `<atom>{lo,hi}` / `<atom>{n}` / `<atom>` where `<atom>` is `.` or a
/// character class. Returns the alphabet and the repetition bounds.
fn parse_simple_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let (alphabet, rest) = if chars.first() == Some(&'.') {
        // Printable ASCII.
        (
            (b' '..=b'~').map(|b| b as char).collect::<Vec<char>>(),
            &chars[1..],
        )
    } else if chars.first() == Some(&'[') {
        let close = chars.iter().position(|&c| c == ']')?;
        (expand_char_class(&chars[1..close]), &chars[close + 1..])
    } else {
        return None;
    };
    if alphabet.is_empty() {
        return None;
    }
    if rest.is_empty() {
        return Some((alphabet, 1, 1));
    }
    if rest.first() != Some(&'{') || rest.last() != Some(&'}') {
        return None;
    }
    let body: String = rest[1..rest.len() - 1].iter().collect();
    let (lo, hi) = match body.split_once(',') {
        None => {
            let n = body.trim().parse::<usize>().ok()?;
            (n, n)
        }
        Some((a, b)) => (
            a.trim().parse::<usize>().ok()?,
            b.trim().parse::<usize>().ok()?,
        ),
    };
    if lo > hi {
        return None;
    }
    Some((alphabet, lo, hi))
}

/// Expands a character-class body (`a-zA-Z0-9 _-`) into its alphabet.
fn expand_char_class(body: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
            if lo <= hi {
                out.extend((lo..=hi).filter_map(char::from_u32));
            }
            i += 3;
        } else {
            out.push(body[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let mut r = rng();
        let s = (0u64..10, 1.0f64..2.0).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((1.0..12.0).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn collections_respect_size_bounds() {
        let mut r = rng();
        let s = collection_vec(0u32..5, 2..6);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!((2..6).contains(&v.len()));
        }
        let fixed = collection_vec(0u32..5, 4usize);
        assert_eq!(fixed.generate(&mut r).len(), 4);
    }

    #[test]
    fn regex_patterns_generate_matching_strings() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "[a-z]{0,10}".generate(&mut r);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-zA-Z0-9 _-]{0,12}".generate(&mut r);
            assert!(t.len() <= 12);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));
            let u = ".{0,120}".generate(&mut r);
            assert!(u.len() <= 120);
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut r = rng();
        let s = option_of(0u32..3);
        let values: Vec<Option<u32>> = (0..100).map(|_| s.generate(&mut r)).collect();
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().any(Option::is_none));
    }
}
