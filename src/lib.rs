//! Umbrella crate for the PackageBuilder reproduction.
//!
//! Re-exports the workspace crates so that examples and integration tests can
//! depend on a single crate:
//!
//! * [`minidb`] — the in-memory relational substrate,
//! * [`lp_solver`] — the LP/MILP solver substrate,
//! * [`paql`] — the PaQL package query language,
//! * [`packagebuilder`] — the package query engine (the paper's contribution),
//! * [`datagen`] — seeded synthetic workload generators.

pub use datagen;
pub use lp_solver;
pub use minidb;
pub use packagebuilder;
pub use paql;
