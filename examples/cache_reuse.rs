//! Cache reuse: two queries on one relation, the second served warm.
//!
//! The engine is a *session*: repeated queries over the same relation and
//! base (`WHERE`) predicate reuse the materialized view columns, candidate
//! statistics and sketch→refine partitioning banked by earlier queries —
//! only the solver runs again. Mutating the relation automatically
//! invalidates the cached state (fingerprinted keys), so reuse is never a
//! correctness trade.
//!
//! ```text
//! cargo run --release --example cache_reuse
//! ```

use std::time::Instant;

use packagebuilder_repro::datagen::{recipes, Seed};
use packagebuilder_repro::minidb::Catalog;
use packagebuilder_repro::packagebuilder::PackageEngine;

fn main() {
    let mut catalog = Catalog::new();
    catalog.register(recipes(20_000, Seed(42)));
    let engine = PackageEngine::new(catalog);

    let meal_plan = "SELECT PACKAGE(R) AS P FROM recipes R \
        WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
        MAXIMIZE SUM(P.protein)";

    // Cold: evaluates the base predicate over 20,000 rows, materializes one
    // column per aggregate term, profiles the candidates, partitions them
    // for the sketch→refine solver — then solves.
    let t0 = Instant::now();
    let cold = engine.execute_paql(meal_plan).expect("cold solve succeeds");
    let cold_time = t0.elapsed();

    // Warm: the same query again. Everything built above is pulled from the
    // engine's view cache; only the solver runs.
    let t1 = Instant::now();
    let warm = engine.execute_paql(meal_plan).expect("warm solve succeeds");
    let warm_time = t1.elapsed();

    assert_eq!(cold.best(), warm.best(), "cache hits are bit-identical");
    println!(
        "cold solve: {:>8.3} ms  (objective {:?})",
        cold_time.as_secs_f64() * 1e3,
        cold.best_objective()
    );
    println!(
        "warm solve: {:>8.3} ms  (objective {:?})",
        warm_time.as_secs_f64() * 1e3,
        warm.best_objective()
    );

    // A *different* query on the same relation + predicate still reuses the
    // banked columns it shares with the first one (COUNT and SUM(calories))
    // and only materializes what it adds (SUM(fat)).
    let low_fat = "SELECT PACKAGE(R) AS P FROM recipes R \
        WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
        MINIMIZE SUM(P.fat)";
    let t2 = Instant::now();
    let third = engine
        .execute_paql(low_fat)
        .expect("variant solve succeeds");
    println!(
        "variant    : {:>8.3} ms  (objective {:?}, reuses 2 of its 3 columns)",
        t2.elapsed().as_secs_f64() * 1e3,
        third.best_objective()
    );

    let stats = engine.view_cache().stats();
    println!(
        "\nview cache: {} entries, {} hits, {} misses, \
         {} columns reused, {} built",
        stats.entries, stats.hits, stats.misses, stats.columns_reused, stats.columns_built
    );
}
