//! Out-of-core columns: solving a package query whose view columns live in
//! a spill file, streamed through a buffer pool a fraction of their size.
//!
//! The engine materializes one coefficient column per aggregate term. By
//! default those columns are resident `Vec`s, but above
//! `EngineConfig::column_memory_budget` they are written chunk by chunk to a
//! temporary spill file and read back on demand through a small LRU pool of
//! page frames (`EngineConfig::pool_pages`). The storage mode is invisible
//! to the solvers: packages, objectives and evaluation counters are
//! bit-identical either way — only the memory footprint changes.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use std::time::Instant;

use packagebuilder_repro::datagen::{recipes, Seed};
use packagebuilder_repro::minidb::Catalog;
use packagebuilder_repro::packagebuilder::config::EngineConfig;
use packagebuilder_repro::packagebuilder::{pool_stats, PackageEngine};
use packagebuilder_repro::paql;

const QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    WHERE R.gluten = 'free' \
    SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
    MAXIMIZE SUM(P.protein)";

const N: usize = 200_000;
const POOL_PAGES: usize = 8;

fn engine(config: EngineConfig) -> PackageEngine {
    let mut catalog = Catalog::new();
    catalog.register(recipes(N, Seed(42)));
    PackageEngine::with_config(catalog, config)
}

fn main() {
    println!("=== Out-of-core column store: {N} recipes, {POOL_PAGES}-page pool ===\n");

    // Reference run: an effectively unlimited budget keeps every column
    // resident, exactly as previous versions of the engine always did.
    let resident = engine(EngineConfig::default().with_column_memory_budget(usize::MAX));
    let t0 = Instant::now();
    let resident_result = resident.execute_paql(QUERY).expect("resident solve");
    let resident_time = t0.elapsed();

    // Out-of-core run: budget 0 forces *every* view out of core, so all
    // column chunks go to the spill file and scans fault them back in
    // through just eight page frames.
    let paged = engine(
        EngineConfig::default()
            .with_column_memory_budget(0)
            .with_pool_pages(POOL_PAGES),
    );
    let before = pool_stats();
    let t1 = Instant::now();
    let paged_result = paged.execute_paql(QUERY).expect("paged solve");
    let paged_time = t1.elapsed();
    let after = pool_stats();

    // The contract the test suite pins: storage mode never changes results.
    assert_eq!(resident_result.packages, paged_result.packages);
    assert_eq!(resident_result.objectives, paged_result.objectives);
    assert_eq!(resident_result.optimal, paged_result.optimal);

    println!(
        "resident solve: {:>9.3} ms  (objective {:?})",
        resident_time.as_secs_f64() * 1e3,
        resident_result.best_objective()
    );
    println!(
        "paged solve   : {:>9.3} ms  (objective {:?}, identical package)",
        paged_time.as_secs_f64() * 1e3,
        paged_result.best_objective()
    );

    // The pool counters show how much column data moved through the frames:
    // every miss is a chunk read back from the spill file, every eviction a
    // frame recycled for a different page.
    println!(
        "\nbuffer pool   : {} spilled, {} hits, {} misses, {} evictions",
        after.pages_spilled - before.pages_spilled,
        after.hits - before.hits,
        after.misses - before.misses,
        after.evictions - before.evictions,
    );

    // Peek below the engine: build the view once more and report where its
    // bytes actually live. With budget 0 everything is in the spill file;
    // only chunk metadata (per-chunk min/max/count summaries) stays in RAM.
    let query = paql::parse(QUERY).expect("example query is valid PaQL");
    let spec = paged.build_spec(&query).expect("spec builds");
    let view = spec.view();
    println!(
        "view storage  : paged={}, {} B of column data resident, {} B in the spill file",
        view.is_paged(),
        view.resident_bytes(),
        view.spilled_bytes(),
    );
    println!(
        "pool capacity : {} frames x 33280 B/page — the working set never exceeds this",
        POOL_PAGES
    );
}
