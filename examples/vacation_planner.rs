//! The vacation-planner scenario from the paper's introduction: flights,
//! hotels and rental cars under a combined budget, with the beach-distance /
//! rental-car trade-off expressed as a disjunctive global constraint.
//!
//! ```text
//! cargo run --release --example vacation_planner
//! ```

use packagebuilder_repro::datagen::{travel_options, Seed};
use packagebuilder_repro::minidb::Catalog;
use packagebuilder_repro::packagebuilder::config::EngineConfig;
use packagebuilder_repro::packagebuilder::{PackageEngine, Strategy};

fn main() {
    let mut catalog = Catalog::new();
    catalog.register(travel_options(800, 600, 200, Seed(11)));
    let engine = PackageEngine::new(catalog);
    let table = engine.catalog().table("travel_options").unwrap();

    // "They do not want to spend more than $2,000 on flights and hotels
    // combined." One flight, one hotel, optionally a car, under budget,
    // maximizing comfort.
    let base_query = "SELECT PACKAGE(T) AS P FROM travel_options T \
        SUCH THAT COUNT(*) FILTER (WHERE T.kind = 'flight') = 1 AND \
                  COUNT(*) FILTER (WHERE T.kind = 'hotel') = 1 AND \
                  COUNT(*) FILTER (WHERE T.kind = 'car') <= 1 AND \
                  SUM(P.price) FILTER (WHERE T.kind <> 'car') <= 2000 \
        MAXIMIZE SUM(P.comfort)";
    println!("=== Budget vacation (flights + hotel <= $2000, car optional) ===\n");
    let result = engine
        .execute_paql(base_query)
        .expect("vacation query evaluates");
    println!("{}", result.describe(table));

    // "They also want to be in walking distance from the beach, unless their
    // budget can fit a rental car, in which case they are willing to stay
    // farther away." — a disjunctive SUCH THAT formula; it is not conjunctive,
    // so the engine falls back to local search (paper Section 5: solvers
    // cannot handle such queries directly).
    let disjunctive_query = "SELECT PACKAGE(T) AS P FROM travel_options T \
        SUCH THAT COUNT(*) FILTER (WHERE T.kind = 'flight') = 1 AND \
                  COUNT(*) FILTER (WHERE T.kind = 'hotel') = 1 AND \
                  SUM(P.price) <= 2000 AND \
                  (MAX(P.beach_distance_km) <= 1 OR \
                   COUNT(*) FILTER (WHERE T.kind = 'car') = 1) \
        MAXIMIZE SUM(P.comfort)";
    println!("=== Walking distance to the beach, unless a car fits the budget ===\n");
    let engine_ls = PackageEngine::with_config(
        engine.catalog().clone(),
        EngineConfig::with_strategy(Strategy::LocalSearch).with_seed(11),
    );
    match engine_ls.execute_paql(disjunctive_query) {
        Ok(result) if !result.is_empty() => println!("{}", result.describe(table)),
        Ok(_) => {
            println!("no package satisfied the disjunctive constraints within the search budget\n")
        }
        Err(e) => println!("evaluation failed: {e}\n"),
    }
}
