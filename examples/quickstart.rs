//! Quickstart: run the paper's meal-plan package query end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use packagebuilder_repro::datagen::{recipes, Seed};
use packagebuilder_repro::minidb::Catalog;
use packagebuilder_repro::packagebuilder::PackageEngine;
use packagebuilder_repro::paql;

fn main() {
    // 1. Load data into the catalog (the role of the DBMS in the paper).
    let mut catalog = Catalog::new();
    catalog.register(recipes(2_000, Seed(42)));

    // 2. Create the engine.
    let engine = PackageEngine::new(catalog);

    // 3. The athlete's daily meal plan from Section 2 of the paper.
    let query_text = "SELECT PACKAGE(R) AS P \
        FROM recipes R \
        WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
        MAXIMIZE SUM(P.protein)";

    // 4. Show the natural-language reading of the query (Figure 1 feature).
    let parsed = paql::parse(query_text).expect("the example query is valid PaQL");
    println!("PaQL query:\n  {query_text}\n");
    println!(
        "In plain English:\n{}\n",
        indent(&paql::pretty::describe_query(&parsed))
    );

    // 5. Evaluate it and print the best package.
    let result = engine
        .execute_paql(query_text)
        .expect("query evaluation succeeds");
    let table = engine.catalog().table("recipes").expect("registered above");
    println!("Result:\n{}", indent(&result.describe(table)));
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
