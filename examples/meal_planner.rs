//! The meal-planner demo scenario (paper Sections 1, 3 and 7): build a daily
//! plan, then refine it interactively with adaptive exploration and
//! constraint suggestion.
//!
//! ```text
//! cargo run --release --example meal_planner
//! ```

use packagebuilder_repro::datagen::{recipes, Seed};
use packagebuilder_repro::minidb::Catalog;
use packagebuilder_repro::packagebuilder::explore::ExplorationSession;
use packagebuilder_repro::packagebuilder::suggest::{suggest, Highlight};
use packagebuilder_repro::packagebuilder::PackageEngine;
use packagebuilder_repro::paql;

const QUERY: &str = "SELECT PACKAGE(R) AS P \
    FROM recipes R \
    WHERE R.gluten = 'free' \
    SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
    MAXIMIZE SUM(P.protein)";

fn main() {
    let mut catalog = Catalog::new();
    catalog.register(recipes(3_000, Seed(7)));
    let engine = PackageEngine::new(catalog);
    let table = engine.catalog().table("recipes").unwrap().clone();

    println!("=== The athlete's meal plan ===\n");
    let query = paql::parse(QUERY).unwrap();
    println!("{}\n", paql::pretty::describe_query(&query));

    // --- Adaptive exploration (Section 3.3) -------------------------------
    let mut session = ExplorationSession::new(query);
    let first = session.sample(&engine).expect("initial sample");
    println!(
        "Initial sample package:\n{}",
        first.best().unwrap().render(&table)
    );

    // The user likes the highest-protein meal of the sample and locks it.
    let sample = session.current().unwrap().clone();
    let favourite = sample
        .tuple_ids()
        .into_iter()
        .max_by(|a, b| {
            table
                .value_f64(*a, "protein")
                .unwrap()
                .total_cmp(&table.value_f64(*b, "protein").unwrap())
        })
        .unwrap();
    session.lock(favourite).unwrap();
    println!("Locking {favourite} (the highest-protein meal) and asking for a new sample...\n");

    let refined = session.refine(&engine).expect("refinement");
    println!(
        "Refined package (locked tuple kept):\n{}",
        refined.best().unwrap().render(&table)
    );

    // Constraints the system infers from the locked tuples.
    let inferred = session.inferred_constraints(&engine).unwrap();
    println!("Constraints inferred from your selections:");
    for s in inferred.iter().take(5) {
        println!("  - {}   [{}]", s.paql, s.description);
    }
    println!();

    // --- Constraint suggestion (Section 3.1) ------------------------------
    println!("=== Suggestions when highlighting the 'fat' cell of {favourite} ===");
    for s in suggest(
        &table,
        "P",
        &Highlight::Cell {
            tuple: favourite,
            column: "fat".into(),
        },
    )
    .unwrap()
    {
        println!("  - {:?}: {}   [{}]", s.kind, s.paql, s.description);
    }
    println!();

    // --- Final plan ---------------------------------------------------------
    let final_result = engine.execute_paql(QUERY).unwrap();
    println!(
        "=== Optimal plan for the original query ===\n{}",
        final_result.describe(&table)
    );
}
