//! A tiny PaQL REPL over the bundled synthetic datasets.
//!
//! ```text
//! cargo run --release --example paql_repl
//! ```
//!
//! Commands:
//!   \tables            list relations
//!   \schema <table>    show a relation's schema
//!   \sample <table>    show the first rows of a relation
//!   \quit              exit
//! Anything else is parsed and executed as a PaQL query.

use std::io::{self, BufRead, Write};

use packagebuilder_repro::datagen::{standard_catalog, Seed};
use packagebuilder_repro::packagebuilder::PackageEngine;
use packagebuilder_repro::paql;

fn main() {
    let engine = PackageEngine::new(standard_catalog(Seed(42)));
    println!(
        "PackageBuilder PaQL REPL — relations: {}",
        engine.catalog().table_names().join(", ")
    );
    println!("Example:");
    println!("  SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free'");
    println!("  SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)");
    println!("Type \\quit to exit.\n");

    let stdin = io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("paql> ");
        } else {
            print!("  ... ");
        }
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if handle_command(&engine, trimmed) {
                break;
            }
            continue;
        }
        if trimmed.is_empty() && !buffer.is_empty() {
            // A blank line terminates a multi-line query.
            execute(&engine, &buffer);
            buffer.clear();
            continue;
        }
        buffer.push_str(&line);
        // Single-line queries that look complete run immediately.
        if buffer.to_ascii_uppercase().contains("SELECT") && trimmed.ends_with(';') {
            let q = buffer.trim_end().trim_end_matches(';').to_string();
            execute(&engine, &q);
            buffer.clear();
        }
    }
}

/// Returns true when the REPL should exit.
fn handle_command(engine: &PackageEngine, command: &str) -> bool {
    let mut parts = command.split_whitespace();
    match parts.next() {
        Some("\\quit") | Some("\\q") => return true,
        Some("\\tables") => println!("{}", engine.catalog().table_names().join("\n")),
        Some("\\schema") => match parts.next().and_then(|t| engine.catalog().table(t)) {
            Some(t) => println!("{} {}", t.name(), t.schema()),
            None => println!("usage: \\schema <table>"),
        },
        Some("\\sample") => match parts.next().and_then(|t| engine.catalog().table(t)) {
            Some(t) => println!("{}", t.render(5)),
            None => println!("usage: \\sample <table>"),
        },
        _ => println!("unknown command; available: \\tables, \\schema, \\sample, \\quit"),
    }
    false
}

fn execute(engine: &PackageEngine, text: &str) {
    let text = text.trim();
    if text.is_empty() {
        return;
    }
    match paql::parse(text) {
        Err(e) => println!("{}", e.render(text)),
        Ok(query) => {
            println!("{}\n", paql::pretty::describe_query(&query));
            match engine.execute(&query) {
                Err(e) => println!("error: {e}"),
                Ok(result) => match engine.relation(&query) {
                    Ok(table) => println!("{}", result.describe(table)),
                    Err(e) => println!("error: {e}"),
                },
            }
        }
    }
}
