//! The investment-portfolio scenario from the paper's introduction: a $50K
//! budget, at least 30% of the assets in technology, and a balance of
//! short-term and long-term options.
//!
//! ```text
//! cargo run --release --example portfolio
//! ```

use packagebuilder_repro::datagen::{stocks, Seed};
use packagebuilder_repro::minidb::Catalog;
use packagebuilder_repro::packagebuilder::config::EngineConfig;
use packagebuilder_repro::packagebuilder::PackageEngine;

fn main() {
    let mut catalog = Catalog::new();
    catalog.register(stocks(1_500, Seed(23)));
    // Ask for the 3 best portfolios so the broker has alternatives to show.
    let engine = PackageEngine::with_config(catalog, EngineConfig::default().packages(3));
    let table = engine.catalog().table("stocks").unwrap();

    let query = "SELECT PACKAGE(S) AS P FROM stocks S \
        WHERE S.risk <= 0.5 \
        SUCH THAT SUM(P.price) <= 50000 AND \
                  SUM(P.price) FILTER (WHERE S.sector = 'technology') >= 0.3 * SUM(P.price) AND \
                  COUNT(*) FILTER (WHERE S.horizon = 'short') >= 3 AND \
                  COUNT(*) FILTER (WHERE S.horizon = 'long') >= 3 \
        MAXIMIZE SUM(P.expected_return)";

    println!("=== Investment portfolio: $50K budget, >=30% technology, balanced horizons ===\n");
    let result = engine
        .execute_paql(query)
        .expect("portfolio query evaluates");
    println!("{}", result.describe(table));

    // Show the composition of every returned portfolio.
    let schema = table.schema();
    for (rank, pkg) in result.packages.iter().enumerate() {
        let total: f64 = pkg
            .members()
            .map(|(id, m)| table.require(id).unwrap().get_f64(schema, "price").unwrap() * m as f64)
            .sum();
        let tech: f64 = pkg
            .members()
            .filter(|(id, _)| {
                table
                    .require(*id)
                    .unwrap()
                    .get_named(schema, "sector")
                    .unwrap()
                    .to_string()
                    == "technology"
            })
            .map(|(id, m)| table.require(id).unwrap().get_f64(schema, "price").unwrap() * m as f64)
            .sum();
        let ret = result.objectives[rank].unwrap_or(f64::NAN);
        println!(
            "portfolio #{}: {} lots, cost ${:.0}, technology share {:.1}%, expected return ${:.0}",
            rank + 1,
            pkg.cardinality(),
            total,
            100.0 * tech / total,
            ret
        );
    }
}
