//! Property-based tests spanning the PaQL front end and the evaluation
//! strategies.

use packagebuilder_repro::datagen::{uniform_table, Seed};
use packagebuilder_repro::minidb::Catalog;
use packagebuilder_repro::packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder_repro::packagebuilder::PackageEngine;
use packagebuilder_repro::paql;
use proptest::prelude::*;

/// Builds the family of queries the properties range over: a cardinality
/// constraint plus a SUM window on the synthetic `w` column, maximizing `v`.
fn query(count: u64, lo: f64, hi: f64) -> String {
    format!(
        "SELECT PACKAGE(T) AS P FROM t T \
         SUCH THAT COUNT(*) = {count} AND SUM(P.w) BETWEEN {lo:.2} AND {hi:.2} \
         MAXIMIZE SUM(P.v)"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The ILP strategy and pruned enumeration agree on feasibility and on the
    /// optimal objective for every query in the family.
    #[test]
    fn ilp_matches_enumeration(
        seed in 0u64..1000,
        count in 2u64..4,
        lo in 10.0f64..40.0,
        width in 5.0f64..40.0,
    ) {
        let n = 12usize;
        let mut catalog = Catalog::new();
        catalog.register(uniform_table("t", n, 5.0, 20.0, Seed(seed)));
        let q = paql::parse(&query(count, lo, lo + width)).unwrap();

        let enum_engine = PackageEngine::with_config(catalog.clone(), EngineConfig::with_strategy(Strategy::PrunedEnumeration));
        let ilp_engine = PackageEngine::with_config(catalog, EngineConfig::with_strategy(Strategy::Ilp));
        let a = enum_engine.execute(&q).unwrap();
        let b = ilp_engine.execute(&q).unwrap();

        prop_assert_eq!(a.is_empty(), b.is_empty(), "feasibility disagreement");
        if let (Some(x), Some(y)) = (a.best_objective(), b.best_objective()) {
            prop_assert!((x - y).abs() < 1e-6, "objective disagreement: {} vs {}", x, y);
        }
    }

    /// Every package any strategy returns is valid: it satisfies the base and
    /// global constraints and the multiplicity bound.
    #[test]
    fn returned_packages_are_always_valid(
        seed in 0u64..1000,
        count in 2u64..5,
        lo in 10.0f64..50.0,
        width in 5.0f64..50.0,
        strategy_pick in 0usize..3,
    ) {
        let n = 30usize;
        let strategy = [Strategy::Ilp, Strategy::LocalSearch, Strategy::PrunedEnumeration][strategy_pick];
        let mut catalog = Catalog::new();
        catalog.register(uniform_table("t", n, 5.0, 20.0, Seed(seed)));
        let q = paql::parse(&query(count, lo, lo + width)).unwrap();
        let engine = PackageEngine::with_config(catalog, EngineConfig::with_strategy(strategy));
        let result = engine.execute(&q).unwrap();
        let spec = engine.build_spec(&q).unwrap();
        for p in &result.packages {
            prop_assert!(spec.is_valid(p).unwrap(), "strategy {:?} returned an invalid package", strategy);
        }
    }

    /// Pretty-printing a parsed query and re-parsing it yields the same AST.
    #[test]
    fn paql_printer_round_trips(
        count in 1u64..6,
        lo in 0.0f64..100.0,
        width in 1.0f64..100.0,
        repeat in 1u32..4,
    ) {
        let text = format!(
            "SELECT PACKAGE(T) AS P FROM t T REPEAT {repeat} WHERE T.w >= {lo:.2} \
             SUCH THAT COUNT(*) = {count} AND SUM(P.w) <= {:.2} MINIMIZE SUM(P.v)",
            lo + width
        );
        let parsed = paql::parse(&text).unwrap();
        let printed = paql::pretty::to_paql(&parsed);
        let reparsed = paql::parse(&printed).unwrap();
        prop_assert_eq!(parsed, reparsed, "printed form was: {}", printed);
    }

    /// Widening the SUM window never removes feasibility and never lowers the
    /// optimal objective (monotonicity of relaxation).
    #[test]
    fn relaxing_constraints_is_monotone(
        seed in 0u64..500,
        lo in 20.0f64..40.0,
        width in 5.0f64..20.0,
        extra in 1.0f64..30.0,
    ) {
        let mut catalog = Catalog::new();
        catalog.register(uniform_table("t", 14, 5.0, 20.0, Seed(seed)));
        let tight = paql::parse(&query(3, lo, lo + width)).unwrap();
        let loose = paql::parse(&query(3, lo, lo + width + extra)).unwrap();
        let engine = PackageEngine::with_config(catalog, EngineConfig::with_strategy(Strategy::PrunedEnumeration));
        let a = engine.execute(&tight).unwrap();
        let b = engine.execute(&loose).unwrap();
        if !a.is_empty() {
            prop_assert!(!b.is_empty(), "relaxing the constraint lost feasibility");
            prop_assert!(b.best_objective().unwrap() >= a.best_objective().unwrap() - 1e-9);
        }
    }
}
