//! Cross-crate integration tests: PaQL text → parser → analyzer → engine →
//! packages, over the synthetic datasets, for all three scenarios the paper's
//! introduction motivates.

use packagebuilder_repro::datagen::{recipes, standard_catalog, stocks, travel_options, Seed};
use packagebuilder_repro::minidb::Catalog;
use packagebuilder_repro::packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder_repro::packagebuilder::PackageEngine;
use packagebuilder_repro::paql;

const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
    SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

#[test]
fn meal_planner_scenario_finds_a_valid_optimal_plan() {
    let mut catalog = Catalog::new();
    catalog.register(recipes(500, Seed(1)));
    let engine = PackageEngine::new(catalog);
    let result = engine.execute_paql(MEAL_QUERY).unwrap();
    assert!(result.optimal);
    let plan = result.best().expect("a feasible 3-meal plan exists");
    assert_eq!(plan.cardinality(), 3);

    // Re-verify every constraint directly against the raw table.
    let table = engine.catalog().table("recipes").unwrap();
    let schema = table.schema();
    let mut calories = 0.0;
    for (tid, mult) in plan.members() {
        assert_eq!(mult, 1, "default REPEAT allows each recipe once");
        let row = table.require(tid).unwrap();
        assert_eq!(row.get_named(schema, "gluten").unwrap().to_string(), "free");
        calories += row.get_f64(schema, "calories").unwrap();
    }
    assert!(
        (2000.0..=2500.0).contains(&calories),
        "total calories {calories}"
    );
}

#[test]
fn vacation_planner_scenario_respects_the_budget_and_kind_constraints() {
    let mut catalog = Catalog::new();
    catalog.register(travel_options(400, 300, 100, Seed(2)));
    let engine = PackageEngine::new(catalog);
    let result = engine
        .execute_paql(
            "SELECT PACKAGE(T) AS P FROM travel_options T \
             SUCH THAT COUNT(*) FILTER (WHERE T.kind = 'flight') = 1 AND \
                       COUNT(*) FILTER (WHERE T.kind = 'hotel') = 1 AND \
                       COUNT(*) FILTER (WHERE T.kind = 'car') <= 1 AND \
                       SUM(P.price) FILTER (WHERE T.kind <> 'car') <= 2000 \
             MAXIMIZE SUM(P.comfort)",
        )
        .unwrap();
    let package = result.best().expect("a budget vacation exists");
    let table = engine.catalog().table("travel_options").unwrap();
    let schema = table.schema();
    let mut flights = 0;
    let mut hotels = 0;
    let mut cars = 0;
    let mut core_price = 0.0;
    for (tid, _) in package.members() {
        let row = table.require(tid).unwrap();
        match row.get_named(schema, "kind").unwrap().to_string().as_str() {
            "flight" => {
                flights += 1;
                core_price += row.get_f64(schema, "price").unwrap();
            }
            "hotel" => {
                hotels += 1;
                core_price += row.get_f64(schema, "price").unwrap();
            }
            "car" => cars += 1,
            other => panic!("unexpected kind {other}"),
        }
    }
    assert_eq!(flights, 1);
    assert_eq!(hotels, 1);
    assert!(cars <= 1);
    assert!(
        core_price <= 2000.0 + 1e-6,
        "flights + hotels cost {core_price}"
    );
}

#[test]
fn portfolio_scenario_enforces_the_technology_share() {
    let mut catalog = Catalog::new();
    catalog.register(stocks(800, Seed(3)));
    let engine = PackageEngine::new(catalog);
    let result = engine
        .execute_paql(
            "SELECT PACKAGE(S) AS P FROM stocks S \
             SUCH THAT SUM(P.price) <= 50000 AND \
                       SUM(P.price) FILTER (WHERE S.sector = 'technology') >= 0.3 * SUM(P.price) AND \
                       COUNT(*) >= 5 \
             MAXIMIZE SUM(P.expected_return)",
        )
        .unwrap();
    let package = result.best().expect("a feasible portfolio exists");
    let table = engine.catalog().table("stocks").unwrap();
    let schema = table.schema();
    let total: f64 = package
        .members()
        .map(|(id, _)| table.require(id).unwrap().get_f64(schema, "price").unwrap())
        .sum();
    let tech: f64 = package
        .members()
        .filter(|(id, _)| {
            table
                .require(*id)
                .unwrap()
                .get_named(schema, "sector")
                .unwrap()
                .to_string()
                == "technology"
        })
        .map(|(id, _)| table.require(id).unwrap().get_f64(schema, "price").unwrap())
        .sum();
    assert!(total <= 50_000.0 + 1e-6);
    assert!(tech >= 0.3 * total - 1e-6);
    assert!(package.cardinality() >= 5);
}

#[test]
fn all_strategies_agree_on_small_instances() {
    let mut catalog = Catalog::new();
    catalog.register(recipes(20, Seed(4)));
    let query = paql::parse(
        "SELECT PACKAGE(R) AS P FROM recipes R \
         SUCH THAT COUNT(*) = 3 AND SUM(P.calories) <= 2200 MAXIMIZE SUM(P.protein)",
    )
    .unwrap();

    let mut objectives = Vec::new();
    for strategy in [
        Strategy::Exhaustive,
        Strategy::PrunedEnumeration,
        Strategy::Ilp,
    ] {
        let engine =
            PackageEngine::with_config(catalog.clone(), EngineConfig::with_strategy(strategy));
        let result = engine.execute(&query).unwrap();
        objectives.push(result.best_objective().expect("feasible"));
    }
    assert!(
        (objectives[0] - objectives[1]).abs() < 1e-6,
        "exhaustive vs pruned: {objectives:?}"
    );
    assert!(
        (objectives[0] - objectives[2]).abs() < 1e-6,
        "exhaustive vs ilp: {objectives:?}"
    );

    // Local search never exceeds the exact optimum.
    let engine =
        PackageEngine::with_config(catalog, EngineConfig::with_strategy(Strategy::LocalSearch));
    let ls = engine.execute(&query).unwrap();
    if let Some(obj) = ls.best_objective() {
        assert!(obj <= objectives[0] + 1e-6);
    }
}

#[test]
fn infeasible_queries_report_empty_results_not_errors() {
    let engine = PackageEngine::new(standard_catalog(Seed(5)));
    let result = engine
        .execute_paql(
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 2 AND SUM(P.calories) >= 1000000 MAXIMIZE SUM(P.protein)",
        )
        .unwrap();
    assert!(result.is_empty());
    let table = engine.catalog().table("recipes").unwrap();
    assert!(result.describe(table).contains("no valid package"));
}

#[test]
fn errors_surface_with_useful_messages() {
    let engine = PackageEngine::new(standard_catalog(Seed(6)));
    // Unknown relation.
    let err = engine
        .execute_paql("SELECT PACKAGE(X) AS P FROM nowhere X SUCH THAT COUNT(*) = 1")
        .unwrap_err();
    assert!(err.to_string().contains("nowhere"));
    // Unknown column.
    let err = engine
        .execute_paql(
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.sugarz > 1 SUCH THAT COUNT(*) = 1",
        )
        .unwrap_err();
    assert!(err.to_string().contains("sugarz"));
    // Syntax error with position information.
    let err =
        paql::parse("SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) === 3").unwrap_err();
    assert!(matches!(err, paql::PaqlError::Parse { .. }));
}

#[test]
fn repeat_packages_allow_and_bound_multiplicities() {
    let mut catalog = Catalog::new();
    catalog.register(recipes(40, Seed(7)));
    let engine = PackageEngine::new(catalog);
    let with_repeat = engine
        .execute_paql(
            "SELECT PACKAGE(R) AS P FROM recipes R REPEAT 3 \
             SUCH THAT COUNT(*) = 4 AND SUM(P.calories) <= 5000 MAXIMIZE SUM(P.protein)",
        )
        .unwrap();
    let without = engine
        .execute_paql(
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 4 AND SUM(P.calories) <= 5000 MAXIMIZE SUM(P.protein)",
        )
        .unwrap();
    let p = with_repeat.best().unwrap();
    assert!(p.max_multiplicity() <= 3);
    // Allowing repetition can only improve (or match) the optimum.
    assert!(with_repeat.best_objective().unwrap() >= without.best_objective().unwrap() - 1e-6);
}

#[test]
fn multiple_packages_are_distinct_valid_and_ordered() {
    let mut catalog = Catalog::new();
    catalog.register(recipes(100, Seed(8)));
    let engine = PackageEngine::with_config(catalog, EngineConfig::default().packages(4));
    let query = paql::parse(
        "SELECT PACKAGE(R) AS P FROM recipes R \
         SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1500 MAXIMIZE SUM(P.protein)",
    )
    .unwrap();
    let result = engine.execute(&query).unwrap();
    assert_eq!(result.len(), 4);
    let spec = engine.build_spec(&query).unwrap();
    for p in &result.packages {
        assert!(spec.is_valid(p).unwrap());
    }
    for i in 0..result.packages.len() {
        for j in i + 1..result.packages.len() {
            assert_ne!(result.packages[i], result.packages[j]);
        }
    }
    for w in result.objectives.windows(2) {
        assert!(w[0].unwrap() >= w[1].unwrap() - 1e-6);
    }
}
